"""Tests for the per-dimension operators: mass, transfer, solver."""

import numpy as np
import pytest
from scipy.linalg import solve as dense_solve

from repro.core.grid import TensorHierarchy
from repro.core.mass import dense_mass_matrix, mass_apply, mass_apply_coarse
from repro.core.solver import solve_correction, thomas_factor, thomas_solve
from repro.core.transfer import dense_transfer_matrix, transfer_apply

from conftest import nonuniform_coords


def _ops(n, rng=None):
    coords = None
    if rng is not None:
        coords = nonuniform_coords((n,), rng)
    h = TensorHierarchy.from_shape((n,), coords)
    return h.level_ops(h.L, 0)


class TestMass:
    @pytest.mark.parametrize("n", [3, 5, 9, 17, 16, 7])
    def test_matches_dense_uniform(self, n, rng):
        ops = _ops(n)
        v = rng.standard_normal(n)
        M = dense_mass_matrix(ops.x_fine)
        np.testing.assert_allclose(mass_apply(v, ops.h_fine), M @ v, rtol=1e-13)

    @pytest.mark.parametrize("n", [5, 9, 33, 12])
    def test_matches_dense_nonuniform(self, n, rng):
        ops = _ops(n, rng)
        v = rng.standard_normal(n)
        M = dense_mass_matrix(ops.x_fine)
        np.testing.assert_allclose(mass_apply(v, ops.h_fine), M @ v, rtol=1e-13)

    def test_mass_is_symmetric_positive(self, rng):
        ops = _ops(17, rng)
        M = dense_mass_matrix(ops.x_fine)
        np.testing.assert_allclose(M, M.T)
        assert np.all(np.linalg.eigvalsh(M) > 0)

    def test_rows_integrate_hat_functions(self):
        # Applying M to all-ones gives the integrals of the hat functions,
        # which sum to the domain length.
        ops = _ops(33)
        out = mass_apply(np.ones(33), ops.h_fine)
        np.testing.assert_allclose(out.sum(), ops.x_fine[-1] - ops.x_fine[0], rtol=1e-13)

    def test_axis_handling(self, rng):
        ops = _ops(9)
        v = rng.standard_normal((4, 9, 3))
        out = mass_apply(v, ops.h_fine, axis=1)
        for i in range(4):
            for j in range(3):
                np.testing.assert_allclose(
                    out[i, :, j], mass_apply(v[i, :, j], ops.h_fine)
                )

    def test_does_not_mutate_input(self, rng):
        ops = _ops(9)
        v = rng.standard_normal(9)
        before = v.copy()
        mass_apply(v, ops.h_fine)
        np.testing.assert_array_equal(v, before)

    def test_coarse_variant(self, rng):
        ops = _ops(9)
        vc = rng.standard_normal(ops.m_coarse)
        Mc = dense_mass_matrix(ops.x_coarse)
        np.testing.assert_allclose(
            mass_apply_coarse(vc, ops.h_coarse), Mc @ vc, rtol=1e-13
        )

    def test_singleton_axis_identity(self):
        out = mass_apply(np.array([[3.0]]), np.zeros(0), axis=1)
        np.testing.assert_array_equal(out, [[3.0]])

    def test_spacing_length_mismatch(self, rng):
        with pytest.raises(ValueError, match="spacing"):
            mass_apply(rng.standard_normal(9), np.ones(3))


class TestTransfer:
    @pytest.mark.parametrize("n", [3, 5, 9, 17, 16, 7, 100])
    def test_matches_dense(self, n, rng):
        ops = _ops(n, rng)
        f = rng.standard_normal(n)
        R = dense_transfer_matrix(ops)
        np.testing.assert_allclose(transfer_apply(f, ops), R @ f, rtol=1e-12, atol=1e-14)

    def test_transfer_is_prolongation_transpose(self, rng):
        # R must equal P^T where P interpolates coarse->fine.
        from repro.core.coefficients import prolong

        ops = _ops(17, rng)
        P = np.zeros((ops.m_fine, ops.m_coarse))
        for j in range(ops.m_coarse):
            e = np.zeros(ops.m_coarse)
            e[j] = 1.0
            P[:, j] = prolong(e, ops)
        np.testing.assert_allclose(dense_transfer_matrix(ops), P.T)

    def test_axis_handling(self, rng):
        ops = _ops(9)
        f = rng.standard_normal((9, 4))
        out = transfer_apply(f, ops, axis=0)
        assert out.shape == (5, 4)
        for j in range(4):
            np.testing.assert_allclose(out[:, j], transfer_apply(f[:, j], ops))

    def test_wrong_length(self, rng):
        ops = _ops(9)
        with pytest.raises(ValueError, match="m_fine"):
            transfer_apply(rng.standard_normal(8), ops)

    def test_constant_preserved_in_mass_sense(self):
        # R M 1 = M_c 1: restriction of the fine load of a constant equals
        # the coarse load of the same constant (partition of unity).
        ops = _ops(17)
        lhs = transfer_apply(mass_apply(np.ones(17), ops.h_fine), ops)
        rhs = mass_apply_coarse(np.ones(ops.m_coarse), ops.h_coarse)
        np.testing.assert_allclose(lhs, rhs, rtol=1e-12)


class TestSolver:
    @pytest.mark.parametrize("n", [3, 5, 9, 17, 16, 7, 100])
    def test_solve_matches_dense(self, n, rng):
        ops = _ops(n, rng)
        g = rng.standard_normal(ops.m_coarse)
        Mc = dense_mass_matrix(ops.x_coarse)
        np.testing.assert_allclose(
            solve_correction(g, ops), dense_solve(Mc, g), rtol=1e-10
        )

    @pytest.mark.parametrize("n", [5, 17, 16, 100])
    def test_thomas_matches_scipy(self, n, rng):
        ops = _ops(n, rng)
        g = rng.standard_normal((3, ops.m_coarse))
        np.testing.assert_allclose(
            thomas_solve(g, ops), solve_correction(g, ops), rtol=1e-9, atol=1e-12
        )

    def test_solve_then_apply_is_identity(self, rng):
        ops = _ops(33)
        g = rng.standard_normal(ops.m_coarse)
        z = solve_correction(g, ops)
        np.testing.assert_allclose(mass_apply_coarse(z, ops.h_coarse), g, rtol=1e-10)

    def test_batched_axis(self, rng):
        ops = _ops(17)
        g = rng.standard_normal((ops.m_coarse, 6))
        out = solve_correction(g, ops, axis=0)
        for j in range(6):
            np.testing.assert_allclose(out[:, j], solve_correction(g[:, j], ops))

    def test_thomas_factor_shapes(self):
        ops = _ops(17)
        cp, denom = thomas_factor(ops)
        assert cp.shape == denom.shape == (ops.m_coarse,)
        assert np.all(denom > 0)  # SPD matrix pivots stay positive

    def test_wrong_length(self, rng):
        ops = _ops(9)
        with pytest.raises(ValueError, match="m_coarse"):
            solve_correction(rng.standard_normal(9), ops)
        with pytest.raises(ValueError, match="m_coarse"):
            thomas_solve(rng.standard_normal(9), ops)

    def test_does_not_mutate_input(self, rng):
        ops = _ops(9)
        g = rng.standard_normal(ops.m_coarse)
        before = g.copy()
        thomas_solve(g, ops)
        np.testing.assert_array_equal(g, before)
