"""Opt-in paper-scale functional runs (``pytest -m slow``).

The regular suite keeps CI-friendly sizes; these tests execute the real
pipeline at the paper's largest evaluated configurations to demonstrate
the functional substrate holds at scale (memory permitting).
"""

import numpy as np
import pytest

from repro.core.decompose import decompose, recompose
from repro.core.grid import TensorHierarchy

pytestmark = pytest.mark.slow


def test_2d_8193_roundtrip():
    """The paper's largest 2D configuration (537 MB of doubles)."""
    h = TensorHierarchy.from_shape((8193, 8193))
    rng = np.random.default_rng(0)
    data = rng.standard_normal((8193, 8193))
    rt = recompose(decompose(data, h), h)
    assert np.abs(rt - data).max() < 1e-8


def test_3d_257_roundtrip_with_metered_engine():
    """A large 3D configuration through the metered GPU engine."""
    from repro.kernels.launches import EngineOptions
    from repro.kernels.metered import GpuSimEngine

    shape = (257, 257, 257)
    h = TensorHierarchy.from_shape(shape)
    rng = np.random.default_rng(1)
    data = rng.standard_normal(shape)
    eng = GpuSimEngine(opts=EngineOptions(n_streams=8))
    rt = recompose(decompose(data, h, eng), h, eng)
    assert np.abs(rt - data).max() < 1e-8
    assert eng.clock > 0
