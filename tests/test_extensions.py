"""Tests for the extension modules: offload, block partitioning, time series."""

import numpy as np
import pytest

from repro.cluster.partition import BlockRefactorer, plan_blocks
from repro.compress.timeseries import TimeSeriesCompressor
from repro.core.grid import TensorHierarchy
from repro.gpu.device import RTX2080TI, V100
from repro.gpu.offload import offload_analysis, offload_breakeven
from repro.workloads.grayscott import simulate


class TestOffload:
    def test_small_grids_not_worthwhile(self):
        pts = offload_analysis([(33, 33)])
        assert not pts[0].worthwhile

    def test_large_grids_worthwhile(self):
        pts = offload_analysis([(4097, 4097)])
        assert pts[0].worthwhile
        assert pts[0].offload_speedup > 5

    def test_breakeven_exists_and_is_moderate(self):
        side, pts = offload_breakeven()
        assert side is not None
        assert 33 <= side <= 1025
        # monotone advantage beyond breakeven
        after = [p.offload_speedup for p in pts if p.shape[0] >= side]
        assert all(b >= a * 0.8 for a, b in zip(after[:-1], after[1:]))

    def test_one_way_transfer_helps(self):
        two = offload_analysis([(513, 513)], roundtrip=True)[0]
        one = offload_analysis([(513, 513)], roundtrip=False)[0]
        assert one.transfer_seconds == pytest.approx(two.transfer_seconds / 2)

    def test_nvlink_beats_pcie(self):
        # V100 (NVLink 45 GB/s) transfers faster than 2080 Ti (PCIe 12 GB/s)
        nv = offload_analysis([(1025, 1025)], device=V100)[0]
        pcie = offload_analysis([(1025, 1025)], device=RTX2080TI)[0]
        assert nv.transfer_seconds < pcie.transfer_seconds


class TestBlockPartitioning:
    def test_plan_covers_grid(self):
        plan = plan_blocks((1000, 64), memory_bytes=2 * 100 * 64 * 8)
        assert plan.starts[0] == 0 and plan.stops[-1] == 1000
        for a, b in zip(plan.stops[:-1], plan.starts[1:]):
            assert a == b  # contiguous, non-overlapping

    def test_no_single_row_tail(self):
        plan = plan_blocks((101, 8), memory_bytes=2 * 50 * 8 * 8)
        assert all(stop - start >= 2 for start, stop in zip(plan.starts, plan.stops))

    def test_single_block_when_it_fits(self):
        plan = plan_blocks((64, 64), memory_bytes=10**9)
        assert plan.n_blocks == 1

    def test_impossible_budget(self):
        with pytest.raises(MemoryError):
            plan_blocks((100, 1000), memory_bytes=100)
        with pytest.raises(ValueError):
            plan_blocks((100, 10), memory_bytes=0)

    def test_blockwise_roundtrip_lossless(self, rng):
        shape = (130, 33)
        data = rng.standard_normal(shape)
        br = BlockRefactorer(shape, memory_bytes=2 * 40 * 33 * 8)
        assert br.n_blocks >= 3
        rt = br.recompose(br.decompose(data))
        np.testing.assert_allclose(rt, data, atol=1e-9)

    def test_blocks_respect_budget(self):
        budget = 2 * 40 * 33 * 8 + 4 * (40 + 33) * 8
        br = BlockRefactorer((130, 33), memory_bytes=budget)
        assert br.peak_block_footprint() <= budget * 1.1

    def test_per_block_classes(self, rng):
        shape = (64, 17)
        data = rng.standard_normal(shape)
        br = BlockRefactorer(shape, memory_bytes=2 * 20 * 17 * 8)
        blocks = br.refactor(data)
        assert len(blocks) == br.n_blocks
        # reassembling every block's full reconstruction gives the data
        out = np.empty(shape)
        for i, cc in enumerate(blocks):
            out[br.plan.slices(i)] = cc.reconstruct()
        np.testing.assert_allclose(out, data, atol=1e-9)

    def test_shape_validation(self, rng):
        br = BlockRefactorer((64, 17), memory_bytes=10**9)
        with pytest.raises(ValueError):
            br.decompose(rng.standard_normal((64, 16)))

    def test_metered_engine_accumulates_across_blocks(self, rng):
        from repro.kernels.metered import GpuSimEngine

        eng = GpuSimEngine()
        br = BlockRefactorer((130, 33), memory_bytes=2 * 40 * 33 * 8, engine=eng)
        br.decompose(rng.standard_normal((130, 33)))
        assert eng.clock > 0
        assert len({r.level for r in eng.records}) > 1


class TestTimeSeries:
    @pytest.fixture(scope="class")
    def frames(self):
        return simulate((33, 33), steps=120, snapshot_every=20, params="stripes")

    def test_per_frame_error_bound(self, frames):
        hier = TensorHierarchy.from_shape((33, 33))
        rngs = max(float(f.max() - f.min()) for f in frames)
        tol = 1e-3 * rngs
        tsc = TimeSeriesCompressor(hier, tol, key_interval=4)
        series = tsc.compress(frames)
        back = tsc.decompress(series)
        for orig, rec in zip(frames, back):
            assert np.abs(rec - orig).max() <= tol

    def test_temporal_prediction_beats_independent(self, frames):
        hier = TensorHierarchy.from_shape((33, 33))
        rngs = max(float(f.max() - f.min()) for f in frames)
        tol = 1e-3 * rngs
        predicted = TimeSeriesCompressor(hier, tol, key_interval=100).compress(frames)
        independent = TimeSeriesCompressor(hier, tol, key_interval=1).compress(frames)
        assert predicted.nbytes < independent.nbytes
        assert predicted.compression_ratio() > independent.compression_ratio()

    def test_key_frames_marked(self, frames):
        hier = TensorHierarchy.from_shape((33, 33))
        tsc = TimeSeriesCompressor(hier, 1e-3, key_interval=2)
        series = tsc.compress(frames)
        assert series.is_key[0] is True
        assert series.is_key == [t % 2 == 0 for t in range(len(frames))]

    def test_validation(self, frames):
        hier = TensorHierarchy.from_shape((33, 33))
        with pytest.raises(ValueError):
            TimeSeriesCompressor(hier, 1e-3, key_interval=0)
        tsc = TimeSeriesCompressor(hier, 1e-3)
        with pytest.raises(ValueError):
            tsc.compress([])
        with pytest.raises(ValueError):
            tsc.compress([np.zeros((17, 17))])
