"""Shard-parallel compression: partition planning, round-trips, streams.

Covers PR 5's tentpole and bugfix satellites:

* ``plan_blocks`` regressions — the self-defeating 1-row guard
  (``shape=(3,4,4)`` with a 2-row budget used to emit a *leading*
  1-row block) and the now-implemented ``2^k+1`` row-count preference;
* :class:`~repro.cluster.sharded.ShardedCompressor` round-trips on
  adversarial inputs (non-``2^k+1`` row counts, shard counts >= 3,
  float32 frames, tolerances near machine epsilon);
* byte-identity of shard containers across the serial/thread/process
  executor backends, shm staging included;
* sharded streams: manifest shard tables, ``read_region`` decoding
  only the covering shards (decode-call spy), the sharded pipeline
  chain, and the CLI surface.
"""

import json
import math

import numpy as np
import pytest

from repro.cluster.partition import BlockRefactorer, plan_blocks
from repro.cluster.sharded import (
    ShardCodec,
    ShardedCompressor,
    decode_shard,
    encode_shards,
    plan_shards,
    shard_tolerance,
)
from repro.io.stream import StepStreamReader, StepStreamWriter, StreamError


def _block_sizes(plan):
    return [b - a for a, b in zip(plan.starts, plan.stops)]


class TestPlanBlocksRegressions:
    def test_no_self_defeating_one_row_guard(self):
        # (3,4,4) with a 2-row budget: the old guard emitted 0:1, 1:3 —
        # *creating* a leading 1-row block while avoiding a trailing one
        plan = plan_blocks((3, 4, 4), memory_bytes=2 * 2 * 16 * 8)
        assert _block_sizes(plan) == [2, 1]
        assert plan.starts[0] == 0 and plan.stops[-1] == 3

    def test_unavoidable_one_row_block_roundtrips(self, rng):
        # n0 odd with a 2-row budget: a 1-row block cannot be avoided,
        # so it must reconstruct losslessly instead of erroring
        shape = (3, 4, 4)
        br = BlockRefactorer(shape, memory_bytes=2 * 2 * 16 * 8)
        assert min(_block_sizes(br.plan)) == 1
        data = rng.standard_normal(shape)
        np.testing.assert_allclose(
            br.recompose(br.decompose(data)), data, atol=1e-9
        )

    @pytest.mark.parametrize(
        "n0,max_rows",
        [(4, 3), (101, 50), (7, 2), (9, 4), (12, 5), (1000, 100)],
    )
    def test_no_avoidable_sub2_blocks(self, n0, max_rows):
        plan = plan_blocks((n0, 8), memory_bytes=2 * max_rows * 8 * 8)
        sizes = _block_sizes(plan)
        assert sum(sizes) == n0
        assert all(a == b for a, b in zip(plan.stops[:-1], plan.starts[1:]))
        assert max(sizes) <= max_rows
        if 2 * math.ceil(n0 / max_rows) <= n0:
            # a partition with every block >= 2 rows exists: emit one
            assert min(sizes) >= 2, sizes

    def test_power_of_two_plus_one_preference(self):
        # budget of 40 rows: 33 = 2^5+1 keeps >75% of it, so blocks snap
        plan = plan_blocks((200, 8), memory_bytes=2 * 40 * 8 * 8)
        sizes = _block_sizes(plan)
        assert sizes.count(33) >= len(sizes) - 1
        # budget of 50: snapping to 33 would lose >=25%, so no snap
        plan = plan_blocks((200, 8), memory_bytes=2 * 50 * 8 * 8)
        assert max(_block_sizes(plan)) == 50

    def test_snap_never_exceeds_budget(self):
        for max_rows in range(2, 70):
            plan = plan_blocks((500, 4), memory_bytes=2 * max_rows * 4 * 8)
            assert max(_block_sizes(plan)) <= max_rows

    def test_no_snap_when_grid_fits_whole(self):
        # 10 rows in a huge budget must stay one block — snapping to 9
        # would manufacture a split no footprint requires
        plan = plan_blocks((10, 4, 4), memory_bytes=1e9)
        assert _block_sizes(plan) == [10]


class TestShardPlanning:
    def test_balanced_split(self):
        plan = plan_shards((20, 9, 9), 3)
        assert _block_sizes(plan) == [7, 7, 6]
        assert plan.starts[0] == 0 and plan.stops[-1] == 20

    def test_bad_counts(self):
        with pytest.raises(ValueError):
            plan_shards((8, 4), 0)
        with pytest.raises(ValueError):
            plan_shards((8, 4), 9)

    def test_shard_tolerance_is_identity_for_linf(self):
        assert shard_tolerance(1e-3, 7) == 1e-3
        with pytest.raises(ValueError):
            shard_tolerance(0.0, 2)
        with pytest.raises(ValueError):
            shard_tolerance(1e-3, 0)


class TestShardedRoundTrip:
    @pytest.mark.parametrize("n_shards", [3, 4, 5])
    @pytest.mark.parametrize("backend", ["zlib", "huffman"])
    def test_adversarial_shapes(self, rng, n_shards, backend):
        # 19 rows: non-2^k+1, indivisible by most shard counts
        shape = (19, 7, 6)
        data = rng.standard_normal(shape)
        tol = 1e-3 * float(data.max() - data.min())
        sc = ShardedCompressor(shape, tol, n_shards=n_shards, backend=backend)
        frame = sc.compress(data)
        assert frame.n_shards == n_shards
        out = sc.decompress(frame)
        assert float(np.abs(out - data).max()) <= tol

    def test_float32_input(self, rng):
        shape = (12, 9, 9)
        data = rng.standard_normal(shape).astype(np.float32)
        tol = 1e-4 * float(data.max() - data.min())
        sc = ShardedCompressor(shape, tol, n_shards=3)
        out = sc.decompress(sc.compress(data))
        assert float(np.abs(out - data.astype(np.float64)).max()) <= tol

    def test_tol_near_machine_epsilon(self, rng):
        shape = (9, 5, 5)
        data = rng.standard_normal(shape)
        tol = 1e-13
        sc = ShardedCompressor(shape, tol, n_shards=3, backend="huffman")
        out = sc.decompress(sc.compress(data))
        assert float(np.abs(out - data).max()) <= tol

    def test_refactored_shards_lossless(self, rng):
        shape = (14, 8, 8)
        data = rng.standard_normal(shape)
        sc = ShardedCompressor(shape, None, n_shards=4)
        out = sc.decompress(sc.compress(data))
        np.testing.assert_allclose(out, data, atol=1e-9)

    def test_memory_budget_planning(self, rng):
        shape = (40, 8, 8)
        data = rng.standard_normal(shape)
        sc = ShardedCompressor(shape, None, memory_bytes=2 * 10 * 64 * 8)
        assert sc.n_shards >= 4
        np.testing.assert_allclose(
            sc.decompress(sc.compress(data)), data, atol=1e-9
        )

    def test_exactly_one_partition_spec(self):
        with pytest.raises(ValueError):
            ShardedCompressor((8, 8), 1e-3)
        with pytest.raises(ValueError):
            ShardedCompressor((8, 8), 1e-3, n_shards=2, memory_bytes=1e9)

    def test_global_bound_tightness_across_shards(self, rng):
        # each shard gets the *full* L-inf budget (disjoint domains):
        # shard errors must not be forced to sum below tol
        shape = (18, 9, 9)
        data = rng.standard_normal(shape)
        tol = 1e-3
        sc = ShardedCompressor(shape, tol, n_shards=3)
        out = sc.decompress(sc.compress(data))
        per_shard = [
            float(np.abs(out[a:b] - data[a:b]).max())
            for a, b in zip(sc.plan.starts, sc.plan.stops)
        ]
        assert max(per_shard) <= tol


class TestBackendByteIdentity:
    @pytest.mark.parametrize("backend", ["zlib", "huffman"])
    def test_compressed_identical_across_executors(self, rng, backend):
        data = rng.standard_normal((20, 9, 9))
        plan = plan_shards(data.shape, 4)
        codec = ShardCodec(tol=1e-3, backend=backend)
        serial = encode_shards(data, plan, codec, "serial")
        thread = encode_shards(data, plan, codec, "thread:3")
        process = encode_shards(data, plan, codec, "process:2")
        assert serial == thread
        assert serial == process

    def test_refactored_identical_across_executors(self, rng):
        data = rng.standard_normal((15, 8, 8))
        plan = plan_shards(data.shape, 3)
        codec = ShardCodec(tol=None)
        serial = encode_shards(data, plan, codec, "serial")
        process = encode_shards(data, plan, codec, "process:2")
        assert serial == process

    def test_shard_payloads_self_contained(self, rng):
        # any single shard decodes without its siblings
        data = rng.standard_normal((12, 6, 6))
        plan = plan_shards(data.shape, 3)
        codec = ShardCodec(tol=1e-3)
        payloads = encode_shards(data, plan, codec, "serial")
        block = decode_shard(payloads[1], "compressed")
        a, b = plan.starts[1], plan.stops[1]
        assert block.shape == (b - a, 6, 6)
        assert float(np.abs(block - data[a:b]).max()) <= 1e-3


class TestShardedStreams:
    @pytest.fixture()
    def frames(self, rng):
        return [rng.standard_normal((20, 9, 9)) for _ in range(3)]

    @pytest.mark.parametrize("tol", [None, 1e-3])
    def test_stream_roundtrip_and_manifest(self, frames, tmp_path, tol):
        root = tmp_path / "stream"
        writer = StepStreamWriter(root, frames[0].shape, tol=tol, shards=4)
        for t, f in enumerate(frames):
            writer.append(f, time=float(t))
        manifest = json.loads((root / "manifest.json").read_text())
        assert len(manifest["shards"]) == 4
        assert all("shards" in s for s in manifest["steps"])
        reader = StepStreamReader(root)
        assert reader.shard_bounds == [(0, 5), (5, 10), (10, 15), (15, 20)]
        for t, f in enumerate(frames):
            out = reader.read_region(t)
            bound = tol if tol is not None else 1e-9
            assert float(np.abs(out - f).max()) <= bound

    def test_read_region_decodes_only_covering_shards(
        self, frames, tmp_path, monkeypatch
    ):
        root = tmp_path / "stream"
        writer = StepStreamWriter(root, frames[0].shape, tol=1e-3, shards=4)
        for f in frames:
            writer.append(f)
        reader = StepStreamReader(root)
        decoded = []
        orig = StepStreamReader._decode_shard
        monkeypatch.setattr(
            StepStreamReader,
            "_decode_shard",
            lambda self, rd, i: decoded.append(i) or orig(self, rd, i),
        )
        # rows 6:9 live entirely in shard 1 (rows 5:10)
        region = reader.read_region(1, (slice(6, 9), slice(2, 7)))
        assert decoded == [1]
        assert region.shape == (3, 5, 9)
        assert float(np.abs(region - frames[1][6:9, 2:7]).max()) <= 1e-3
        # rows 4:16 straddle shards 0..3
        decoded.clear()
        reader.read_region(2, (slice(4, 16),))
        assert decoded == [0, 1, 2, 3]

    def test_read_region_unsharded_fallback(self, frames, tmp_path):
        root = tmp_path / "mono"
        writer = StepStreamWriter(root, frames[0].shape, tol=1e-3)
        writer.append(frames[0])
        reader = StepStreamReader(root)
        out = reader.read_region(0, (slice(3, 8),))
        assert float(np.abs(out - frames[0][3:8]).max()) <= 1e-3

    def test_read_region_validation(self, frames, tmp_path):
        root = tmp_path / "stream"
        writer = StepStreamWriter(root, frames[0].shape, tol=1e-3, shards=2)
        writer.append(frames[0])
        reader = StepStreamReader(root)
        with pytest.raises(ValueError):
            reader.read_region(0, (slice(0, 10, 2),))
        with pytest.raises(ValueError):
            reader.read_region(0, (slice(5, 5),))
        with pytest.raises(ValueError):
            reader.read_region(0, tuple(slice(None) for _ in range(4)))

    def test_sharded_rejects_unsharded_apis(self, frames, tmp_path):
        root = tmp_path / "stream"
        writer = StepStreamWriter(root, frames[0].shape, shards=2)
        writer.append(frames[0])
        with pytest.raises(StreamError):
            writer.predict_step(frames[0])
        with pytest.raises(StreamError):
            writer.encode_refactored(None)
        reader = StepStreamReader(root)
        with pytest.raises(StreamError):
            reader.read(0, k=1)
        with pytest.raises(StreamError):
            reader.read_full(0)
        with pytest.raises(StreamError):
            reader.classes_needed(0, 1e-3)

    @pytest.mark.parametrize("tol", [None, 1e-3])
    def test_read_step_on_sharded_streams(self, frames, tmp_path, tol):
        # both payload modes: sharded steps are independent, so
        # read_step works without key frames or chain replay
        root = tmp_path / "stream"
        writer = StepStreamWriter(root, frames[0].shape, tol=tol, shards=3)
        for f in frames:
            writer.append(f)
        reader = StepStreamReader(root)
        bound = tol if tol is not None else 1e-9
        # random access in arbitrary order
        for t in (2, 0, 1):
            assert float(np.abs(reader.read_step(t) - frames[t]).max()) <= bound

    def test_reopen_requires_same_sharding(self, frames, tmp_path):
        root = tmp_path / "stream"
        StepStreamWriter(root, frames[0].shape, tol=1e-3, shards=4)
        with pytest.raises(StreamError):
            StepStreamWriter(root, frames[0].shape, tol=1e-3, shards=2)
        with pytest.raises(StreamError):
            StepStreamWriter(root, frames[0].shape, tol=1e-3)
        # matching shard layout reopens fine
        w = StepStreamWriter(root, frames[0].shape, tol=1e-3, shards=4)
        w.append(frames[0])
        assert w.n_steps == 1

    def test_step_files_identical_across_executors(self, frames, tmp_path):
        payloads = {}
        for spec in ("serial", "thread:2", "process:2"):
            root = tmp_path / spec.replace(":", "_")
            writer = StepStreamWriter(
                root, frames[0].shape, tol=1e-3, shards=3, executor=spec
            )
            for f in frames:
                writer.append(f)
            payloads[spec] = [
                (root / s["file"]).read_bytes()
                for s in json.loads((root / "manifest.json").read_text())["steps"]
            ]
        assert payloads["serial"] == payloads["thread:2"]
        assert payloads["serial"] == payloads["process:2"]


class TestShardedPipeline:
    def test_pipeline_sharded_chain(self, rng, tmp_path):
        from repro.io.workflow import run_streaming_pipeline

        frames = [rng.standard_normal((12, 7, 7)) for _ in range(3)]
        m = run_streaming_pipeline(
            frames,
            workdir=tmp_path,
            executor="thread:4",
            mode="compressed",
            shards=3,
            keep_stream=True,
        )
        assert m.stage_names == ("shard", "encode", "write")
        assert m.shards == 3
        assert m.record()["shards"] == 3
        reader = StepStreamReader(tmp_path / "pipelined")
        assert reader.n_steps == 3
        assert len(reader.shard_bounds) == 3
        tol = reader.tol
        for t, f in enumerate(frames):
            assert float(np.abs(reader.read_step(t) - f).max()) <= tol

    def test_pipeline_sharded_refactored(self, rng, tmp_path):
        from repro.io.workflow import run_streaming_pipeline

        frames = [rng.standard_normal((10, 6, 6)) for _ in range(2)]
        m = run_streaming_pipeline(
            frames,
            workdir=tmp_path,
            executor="thread:4",
            mode="refactored",
            shards=2,
            keep_stream=True,
        )
        assert m.stage_names == ("shard", "encode", "write")
        reader = StepStreamReader(tmp_path / "pipelined")
        out = reader.read_region(1)
        np.testing.assert_allclose(out, frames[1], atol=1e-9)


class TestShardsCli:
    def test_shards_experiment(self, monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.setenv("REPRO_BENCH_SCALE", "ci")
        assert main(["shards"]) == 0
        out = capsys.readouterr().out
        assert "bit-identical: True" in out

    def test_pipeline_shards_flag(self, monkeypatch, capsys, tmp_path):
        from repro.cli import main

        monkeypatch.setenv("REPRO_BENCH_SCALE", "ci")
        json_path = tmp_path / "rec.json"
        assert main(["pipeline", "--shards", "2", "--json", str(json_path)]) == 0
        record = json.loads(json_path.read_text())
        assert record["shards"] == 2
        assert record["stage_names"] == ["shard", "encode", "write"]
