"""Tests for the grid hierarchies (repro.core.grid)."""

import numpy as np
import pytest

from repro.core.grid import (
    Hierarchy1D,
    TensorHierarchy,
    dyadic_size,
    num_levels_for_size,
)


class TestSizes:
    def test_dyadic_size(self):
        assert [dyadic_size(L) for L in range(5)] == [2, 3, 5, 9, 17]

    def test_dyadic_size_rejects_negative(self):
        with pytest.raises(ValueError):
            dyadic_size(-1)

    @pytest.mark.parametrize("n,L", [(1, 0), (2, 0), (3, 1), (5, 2), (9, 3), (17, 4), (513, 9)])
    def test_num_levels_dyadic(self, n, L):
        assert num_levels_for_size(n) == L

    @pytest.mark.parametrize("n", [4, 6, 7, 10, 100, 1000])
    def test_num_levels_nondyadic_reaches_two(self, n):
        L = num_levels_for_size(n)
        size = n
        for _ in range(L):
            size = size // 2 + 1
        assert size == 2

    def test_num_levels_rejects_zero(self):
        with pytest.raises(ValueError):
            num_levels_for_size(0)


class TestHierarchy1D:
    def test_uniform_default_coords(self):
        h = Hierarchy1D(size=9)
        assert h.n == 9
        assert h.L == 3
        np.testing.assert_allclose(h.coords, np.linspace(0, 1, 9))

    def test_dyadic_index_sets_are_strided(self):
        h = Hierarchy1D(size=17)
        for l in range(h.L + 1):
            idx = h.index(l)
            stride = 2 ** (h.L - l)
            np.testing.assert_array_equal(idx, np.arange(0, 17, stride))

    def test_nesting(self):
        h = Hierarchy1D(size=100)
        for l in range(1, h.L + 1):
            coarse = set(h.index(l - 1).tolist())
            fine = set(h.index(l).tolist())
            assert coarse < fine

    def test_boundaries_always_present(self):
        h = Hierarchy1D(size=100)
        for l in range(h.L + 1):
            idx = h.index(l)
            assert idx[0] == 0
            assert idx[-1] == 99

    def test_nonuniform_coords_propagate(self):
        x = np.array([0.0, 0.1, 0.15, 0.4, 0.9])
        h = Hierarchy1D(x)
        np.testing.assert_array_equal(h.level_coords(h.L), x)
        np.testing.assert_array_equal(h.level_coords(0), x[[0, 4]])

    def test_rejects_decreasing_coords(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            Hierarchy1D(np.array([0.0, 0.5, 0.5, 1.0]))

    def test_rejects_2d_coords(self):
        with pytest.raises(ValueError, match="one-dimensional"):
            Hierarchy1D(np.zeros((3, 3)))

    def test_requires_coords_or_size(self):
        with pytest.raises(ValueError):
            Hierarchy1D()

    def test_rejects_size_zero(self):
        with pytest.raises(ValueError):
            Hierarchy1D(size=0)

    def test_level_out_of_range(self):
        h = Hierarchy1D(size=9)
        with pytest.raises(ValueError):
            h.index(h.L + 1)
        with pytest.raises(ValueError):
            h.index(-1)

    def test_ops_range(self):
        h = Hierarchy1D(size=9)
        with pytest.raises(ValueError):
            h.ops(0)
        with pytest.raises(ValueError):
            h.ops(h.L + 1)

    def test_ops_consistency(self):
        h = Hierarchy1D(size=33)
        for l in range(1, h.L + 1):
            ops = h.ops(l)
            assert ops.m_fine == h.size(l)
            assert ops.m_coarse == h.size(l - 1)
            assert ops.m_detail == ops.m_fine - ops.m_coarse
            # coarse positions must be sorted and unique
            assert np.all(np.diff(ops.coarse_pos) > 0)

    def test_interpolation_weights_sum_to_one(self):
        h = Hierarchy1D(np.sort(np.random.default_rng(1).uniform(size=33)))
        for l in range(1, h.L + 1):
            ops = h.ops(l)
            w = ops.w_left + ops.w_right
            np.testing.assert_allclose(w[ops.has_detail], 1.0)

    @pytest.mark.parametrize("n", [6, 10, 12, 20])
    def test_even_sizes_keep_last_node(self, n):
        h = Hierarchy1D(size=n)
        assert h.index(h.L - 1)[-1] == n - 1


class TestTensorHierarchy:
    def test_from_shape_basic(self):
        h = TensorHierarchy.from_shape((17, 9))
        assert h.shape == (17, 9)
        assert h.L == 4  # max(4, 3)

    def test_mixed_depth_levels(self):
        h = TensorHierarchy.from_shape((17, 5))
        # dim 1 (L=2) only coarsens at the last two global levels
        assert h.dim_level(4, 0) == 4 and h.dim_level(4, 1) == 2
        assert h.dim_level(2, 1) == 0
        assert not h.coarsens(2, 1)
        assert h.coarsens(4, 1)

    def test_level_shapes_monotone(self):
        h = TensorHierarchy.from_shape((33, 17, 9))
        prev = None
        for l in range(h.L + 1):
            s = h.level_shape(l)
            if prev is not None:
                assert all(a <= b for a, b in zip(prev, s))
            prev = s
        assert h.level_shape(h.L) == (33, 17, 9)

    def test_level_stride_dyadic(self):
        h = TensorHierarchy.from_shape((17, 17))
        for l in range(h.L + 1):
            assert h.level_stride(l, 0) == 2 ** (h.L - l)

    def test_num_nodes_and_detail_count(self):
        h = TensorHierarchy.from_shape((5, 5))
        assert h.num_nodes(h.L) == 25
        assert h.num_nodes(h.L - 1) == 9
        assert h.detail_count(h.L) == 16

    def test_detail_count_range(self):
        h = TensorHierarchy.from_shape((5, 5))
        with pytest.raises(ValueError):
            h.detail_count(0)

    def test_coarsening_dims_skips_singletons(self):
        h = TensorHierarchy.from_shape((17, 1))
        assert h.coarsening_dims(h.L) == (0,)

    def test_validate_array(self):
        h = TensorHierarchy.from_shape((5, 5))
        with pytest.raises(ValueError, match="does not match"):
            h.validate_array(np.zeros((5, 4)))
        out = h.validate_array(np.zeros((5, 5), dtype=np.int32))
        assert np.issubdtype(out.dtype, np.floating)

    def test_coords_length_mismatch(self):
        with pytest.raises(ValueError):
            TensorHierarchy.from_shape((5,), coords=(np.linspace(0, 1, 4),))

    def test_coords_tuple_length_mismatch(self):
        with pytest.raises(ValueError):
            TensorHierarchy.from_shape((5, 5), coords=(None,))

    def test_empty_shape_rejected(self):
        with pytest.raises(ValueError):
            TensorHierarchy.from_shape(())

    def test_level_ops_requires_coarsening(self):
        h = TensorHierarchy.from_shape((17, 5))
        with pytest.raises(ValueError):
            h.level_ops(2, 1)  # dim 1 does not coarsen at level 2
