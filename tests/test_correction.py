"""Tests for the global-correction computation against dense linear algebra."""

import numpy as np
import pytest

from repro.core.coefficients import compute_coefficients
from repro.core.correction import compute_correction
from repro.core.grid import TensorHierarchy
from repro.core.mass import dense_mass_matrix
from repro.core.transfer import dense_transfer_matrix

from conftest import nonuniform_coords


def _dense_correction(hier, l, c):
    """z = M_{l-1}^{-1} (⊗R)(⊗M) vec(c) built from dense Kronecker products."""
    Ms, Rs, Mcs = [], [], []
    for k in range(hier.ndim):
        if hier.coarsens(l, k):
            ops = hier.level_ops(l, k)
            Ms.append(dense_mass_matrix(ops.x_fine))
            Rs.append(dense_transfer_matrix(ops))
            Mcs.append(dense_mass_matrix(ops.x_coarse))
        else:
            n = hier.level_shape(l)[k]
            Ms.append(np.eye(n))
            Rs.append(np.eye(n))
            Mcs.append(np.eye(n))
    def kron_all(mats):
        out = mats[0]
        for m in mats[1:]:
            out = np.kron(out, m)
        return out
    big_M, big_R, big_Mc = kron_all(Ms), kron_all(Rs), kron_all(Mcs)
    z = np.linalg.solve(big_Mc, big_R @ big_M @ c.ravel())
    return z.reshape(hier.level_shape(l - 1))


@pytest.mark.parametrize("shape", [(9,), (5, 5), (9, 5), (5, 5, 5), (7, 6), (3, 9, 4)])
def test_matches_dense_kronecker(shape, rng):
    h = TensorHierarchy.from_shape(shape)
    v = rng.standard_normal(shape)
    c = compute_coefficients(v, h, h.L)
    z = compute_correction(c, h, h.L)
    np.testing.assert_allclose(z, _dense_correction(h, h.L, c), rtol=1e-9, atol=1e-12)


def test_matches_dense_nonuniform(rng):
    shape = (9, 9)
    coords = nonuniform_coords(shape, rng)
    h = TensorHierarchy.from_shape(shape, coords)
    v = rng.standard_normal(shape)
    c = compute_coefficients(v, h, h.L)
    np.testing.assert_allclose(
        compute_correction(c, h, h.L), _dense_correction(h, h.L, c), rtol=1e-9
    )


def test_all_levels(rng):
    h = TensorHierarchy.from_shape((17, 9))
    for l in range(h.L, 0, -1):
        c = rng.standard_normal(h.level_shape(l))
        from repro.core.coefficients import zero_coarse_entries

        zero_coarse_entries(c, h, l)
        z = compute_correction(c, h, l)
        assert z.shape == h.level_shape(l - 1)
        np.testing.assert_allclose(z, _dense_correction(h, l, c), rtol=1e-9, atol=1e-12)


def test_correction_is_linear(rng):
    h = TensorHierarchy.from_shape((9, 9))
    c1 = rng.standard_normal((9, 9))
    c2 = rng.standard_normal((9, 9))
    z1 = compute_correction(c1, h, h.L)
    z2 = compute_correction(c2, h, h.L)
    z = compute_correction(2.0 * c1 - 3.0 * c2, h, h.L)
    np.testing.assert_allclose(z, 2.0 * z1 - 3.0 * z2, rtol=1e-9, atol=1e-12)


def test_zero_coefficients_give_zero_correction(rng):
    h = TensorHierarchy.from_shape((17, 17))
    z = compute_correction(np.zeros((17, 17)), h, h.L)
    np.testing.assert_array_equal(z, np.zeros(h.level_shape(h.L - 1)))


def test_correction_is_l2_projection_of_detail(rng):
    # Eq. (2): M_{l-1} z = R M c means z is the L2 projection of the
    # piecewise-linear function with nodal values c onto V_{l-1}; verify
    # the Galerkin orthogonality <c - z, phi_coarse> = 0 in 1D.
    h = TensorHierarchy.from_shape((17,))
    ops = h.level_ops(h.L, 0)
    v = rng.standard_normal(17)
    c = compute_coefficients(v, h, h.L)
    z = compute_correction(c, h, h.L)
    # residual load on coarse basis: R M c - M_c z = 0
    from repro.core.mass import mass_apply, mass_apply_coarse
    from repro.core.transfer import transfer_apply

    load = transfer_apply(mass_apply(c, ops.h_fine), ops)
    np.testing.assert_allclose(load, mass_apply_coarse(z, ops.h_coarse), rtol=1e-9)


def test_level_validation(rng):
    h = TensorHierarchy.from_shape((9,))
    with pytest.raises(ValueError):
        compute_correction(np.zeros(9), h, 0)
    with pytest.raises(ValueError):
        compute_correction(np.zeros(5), h, h.L)  # wrong shape
