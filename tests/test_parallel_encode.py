"""Parallel encode executor + cross-step code-book reuse.

Four contracts:

* the parallel encode/decode paths are *bit-identical* to the serial
  ones (payloads, headers, and the code-book chains of reusing
  streams), on adversarial class mixes;
* code books delta-encode across stream steps and round-trip exactly;
* a :class:`StepStreamReader` can follow a producer that is still
  appending;
* blobs written by the pre-segmentation container layout still decode.
"""

import json
import zlib

import numpy as np
import pytest

from repro.cluster.pipeline import run_pipeline
from repro.compress.executor import (
    ParallelExecutor,
    SerialExecutor,
    get_executor,
    set_default_executor,
)
from repro.compress.huffman import (
    _BLOCK_SYMBOLS,
    apply_table_delta,
    build_code,
    code_from_table,
    huffman_decode,
    huffman_encode,
    table_delta,
    table_from_code,
)
from repro.compress.lossless import (
    _narrow_dtype,
    decode_classes,
    encode_classes,
    materialize_classes_header,
)
from repro.compress.mgard import MgardCompressor
from repro.compress.timeseries import TimeSeriesCompressor
from repro.core.grid import hierarchy_for
from repro.io.stream import StepStreamReader, StepStreamWriter, StreamError


def _par(n=4):
    return ParallelExecutor(n)


def _adversarial_class_mixes(rng):
    """(name, bins, sizes) cases stressing the segmented container."""
    big = 2 * _BLOCK_SYMBOLS + 321  # exercises the block-parallel path
    yield "empty-classes", np.zeros(0, dtype=np.int64), [0, 0, 0]
    yield (
        "single-values",
        np.array([7, -3], dtype=np.int64),
        [1, 0, 1],
    )
    skew = (rng.geometric(0.3, big).astype(np.int64) - 1) * rng.choice([-1, 1], big)
    yield "one-dominant-class", np.concatenate(
        [rng.integers(-4, 5, 100).astype(np.int64), skew]
    ), [100, big]
    esc = rng.integers(-(2**60), 2**60, 5000).astype(np.int64)
    yield "escape-heavy-class", np.concatenate(
        [np.zeros(64, dtype=np.int64), esc, np.full(4097, 42, dtype=np.int64)]
    ), [64, 5000, 4097]
    mixed = [
        rng.integers(-2, 3, 8).astype(np.int64),
        np.zeros(0, dtype=np.int64),
        rng.integers(-300, 300, 600).astype(np.int64),
        (rng.geometric(0.5, big).astype(np.int64) - 1),
        np.full(1, -(2**62), dtype=np.int64),
    ]
    yield "mixed", np.concatenate(mixed), [len(m) for m in mixed]


class TestParallelSerialBitIdentity:
    @pytest.mark.parametrize("backend", ["zlib", "huffman"])
    def test_adversarial_class_mixes(self, rng, backend):
        par = _par()
        for name, bins, sizes in _adversarial_class_mixes(rng):
            p_s, h_s = encode_classes(bins, sizes, backend=backend)
            p_p, h_p = encode_classes(bins, sizes, backend=backend, executor=par)
            assert p_s == p_p, (name, backend)
            assert h_s == h_p, (name, backend)
            assert "segments" in h_s and len(h_s["segments"]) == len(sizes)
            flat_s, got_s = decode_classes(p_s, h_s)
            flat_p, got_p = decode_classes(p_p, h_p, executor=par)
            assert got_s == got_p == [int(s) for s in sizes]
            np.testing.assert_array_equal(flat_s, bins, err_msg=name)
            np.testing.assert_array_equal(flat_p, bins, err_msg=name)

    def test_block_parallel_huffman_encode_decode(self, rng):
        n = 3 * _BLOCK_SYMBOLS + 777
        vals = (rng.geometric(0.4, n).astype(np.int64) - 1) * rng.choice([-1, 1], n)
        par = _par(3)
        p_s, h_s = huffman_encode(vals)
        p_p, h_p = huffman_encode(vals, executor=par)
        assert p_s == p_p and h_s == h_p
        np.testing.assert_array_equal(huffman_decode(p_p, h_p, executor=par), vals)

    def test_multiworker_sync_decode_engages_and_is_exact(self, rng, monkeypatch):
        """Drive the decode range split for real (assert it engaged)."""
        import repro.compress.huffman as H

        n = 2 * H._MIN_DECODE_BLOCKS_PER_WORKER * H._SYNC_BLOCK + 12345
        vals = (rng.geometric(0.4, n).astype(np.int64) - 1) * rng.choice([-1, 1], n)
        vals[:: n // 50] = rng.integers(-(2**60), 2**60, vals[:: n // 50].size)
        p, h = huffman_encode(vals)
        calls = []
        orig = H._decode_sync_range

        def spy(words, starts, ends, rem, total, tables):
            calls.append(len(starts))
            return orig(words, starts, ends, rem, total, tables)

        monkeypatch.setattr(H, "_decode_sync_range", spy)
        out = huffman_decode(p, h, executor=_par(2))
        np.testing.assert_array_equal(out, vals)
        assert len(calls) >= 2, "parallel range split did not engage"
        # and the segmented container routes such a class to the
        # inner-executor path with identical results
        calls.clear()
        sizes = [100, n]
        bins = np.concatenate([rng.integers(-4, 5, 100).astype(np.int64), vals])
        ps, hs = encode_classes(bins, sizes, backend="huffman")
        pp, hp = encode_classes(bins, sizes, backend="huffman", executor=_par(2))
        assert ps == pp and hs == hp
        flat, _ = decode_classes(pp, hp, executor=_par(2))
        np.testing.assert_array_equal(flat, bins)
        assert len(calls) >= 2, "segmented decode did not use the inner split"

    def test_reusing_chains_are_executor_independent(self, rng):
        """Serial and parallel scratch chains evolve identically."""
        sizes = [50, 3000, 20000]
        streams = [
            np.concatenate(
                [rng.integers(-3 - t, 4 + t, s).astype(np.int64) for s in sizes]
            )
            for t in range(4)
        ]
        scr_s, scr_p = {}, {}
        par = _par()
        for t, bins in enumerate(streams):
            p_s, h_s = encode_classes(
                bins, sizes, backend="huffman", scratch=scr_s, refresh=(t == 0)
            )
            p_p, h_p = encode_classes(
                bins, sizes, backend="huffman", scratch=scr_p, refresh=(t == 0),
                executor=par,
            )
            assert p_s == p_p and h_s == h_p, t

    def test_compressor_roundtrip_with_parallel_plan(self, rng):
        shape = (33, 33)
        data = rng.standard_normal(shape).cumsum(0).cumsum(1)
        comp = MgardCompressor.for_shape(shape, 1e-3, backend="huffman",
                                         executor="parallel:3")
        blob = comp.compress(data)
        assert np.abs(comp.decompress(blob) - data).max() <= 1e-3
        serial = MgardCompressor.for_shape(shape, 1e-3, backend="huffman")
        blob_s = serial.compress(data)
        assert blob.payloads == blob_s.payloads
        assert blob.headers == blob_s.headers


class TestExecutorSelection:
    def test_specs(self):
        assert isinstance(get_executor("serial"), SerialExecutor)
        par = get_executor("parallel:5")
        assert isinstance(par, ParallelExecutor) and par.max_workers == 5
        assert get_executor("parallel:5") is par  # shared instance
        with pytest.raises(ValueError):
            get_executor("bogus")
        with pytest.raises(ValueError):
            get_executor("parallel:0")

    def test_default_knob(self):
        set_default_executor("parallel:2")
        try:
            ex = get_executor()
            assert isinstance(ex, ParallelExecutor) and ex.max_workers == 2
        finally:
            set_default_executor(None)
        assert isinstance(get_executor("serial"), SerialExecutor)

    def test_plan_carries_executor_spec(self):
        from repro.compress.plan import compression_plan

        p1 = compression_plan((17, 17), 1e-3, executor="serial")
        p2 = compression_plan((17, 17), 1e-3, executor="parallel:2")
        assert p1 is not p2
        assert isinstance(p1.get_executor(), SerialExecutor)
        assert isinstance(p2.get_executor(), ParallelExecutor)
        # scheduling never changes emitted bytes, so the code-book
        # scratch must survive the ambient executor spec changing
        # (e.g. a stream writer reopened under a different knob)
        assert p1.scratch is p2.scratch
        assert p1.scratch_area("stream-x") is p2.scratch_area("stream-x")


class TestCodeBookDeltas:
    def test_delta_roundtrip_three_steps(self, rng):
        """Tables drift over >= 3 steps; deltas reproduce each exactly."""
        tables = []
        for t in range(4):
            vals = (rng.geometric(0.3 + 0.1 * t, 6000).astype(np.int64) - 1)
            tables.append(table_from_code(build_code(vals)))
        for a, b in zip(tables[:-1], tables[1:]):
            delta = table_delta(a, b)
            rebuilt = apply_table_delta(a, delta)
            ca, cb = code_from_table(rebuilt), code_from_table(b)
            assert ca.lengths == cb.lengths and ca.codes == cb.codes
        # chain: apply all deltas from the first table
        cur = tables[0]
        for nxt in tables[1:]:
            cur = apply_table_delta(cur, table_delta(cur, nxt))
        c_end, c_ref = code_from_table(cur), code_from_table(tables[-1])
        assert c_end.lengths == c_ref.lengths

    def test_stream_reuses_and_deltas_codebooks(self, rng):
        """A slowly-varying 3+ step stream emits refs, decodes exactly."""
        sizes = [400, 30000]
        base = np.concatenate(
            [rng.integers(-6, 7, s).astype(np.int64) for s in sizes]
        )
        steps = [base.copy() for _ in range(5)]
        for t, b in enumerate(steps[1:], start=1):
            # sparse drift: a few positions change value
            idx = rng.integers(0, b.size, 50)
            b[idx] += rng.integers(-1, 2, 50)
        scratch, dec = {}, {}
        kinds = []
        for t, bins in enumerate(steps):
            p, h = encode_classes(
                bins, sizes, backend="huffman", scratch=scratch, refresh=(t == 0)
            )
            flat, _ = decode_classes(p, h, scratch=dec)
            np.testing.assert_array_equal(flat, bins, err_msg=str(t))
            kinds.append(
                ["ref" if "table_ref" in s else "full" for s in h["segments"]]
            )
        # after the first step the dominant class reuses its book
        assert any("ref" in k for k in kinds[1:])

    def test_unresolvable_ref_raises(self, rng):
        sizes = [2000]
        bins = rng.integers(-5, 6, 2000).astype(np.int64)
        scratch = {}
        encode_classes(bins, sizes, backend="huffman", scratch=scratch, refresh=True)
        p, h = encode_classes(bins, sizes, backend="huffman", scratch=scratch)
        if any("table_ref" in s for s in h["segments"]):
            with pytest.raises(ValueError, match="key frame|table"):
                decode_classes(p, h)  # no scratch: chain unknown

    def test_materialize_makes_header_standalone(self, rng):
        sizes = [2000]
        bins = rng.integers(-5, 6, 2000).astype(np.int64)
        scratch, dec = {}, {}
        p0, h0 = encode_classes(bins, sizes, backend="huffman", scratch=scratch,
                                refresh=True)
        decode_classes(p0, h0, scratch=dec)
        p, h = encode_classes(bins, sizes, backend="huffman", scratch=scratch)
        assert any("table_ref" in s for s in h["segments"])
        solid = materialize_classes_header(h, dec)
        assert all("table_ref" not in s for s in solid["segments"])
        flat, _ = decode_classes(p, solid)  # decodes without any context
        np.testing.assert_array_equal(flat, bins)

    def test_encoder_scratch_materializes_its_own_blobs(self, rng, tmp_path):
        """save_compressed resolves refs against the producing scratch."""
        from repro.compress.fileio import load_compressed, save_compressed

        shape = (17, 17)
        data = rng.standard_normal(shape).cumsum(0).cumsum(1)
        comp = MgardCompressor.for_shape(shape, 1e-3, backend="huffman")
        scratch = {}
        comp.compress(data, scratch=scratch, refresh_codebooks=True)
        blob = comp.compress(data, scratch=scratch)
        assert any(
            "table_ref" in s for s in blob.headers[0]["segments"]
        )
        save_compressed(tmp_path / "b.mgz", blob, scratch=scratch)
        loaded, hier = load_compressed(tmp_path / "b.mgz")
        out = MgardCompressor(hier, 1e-3, backend="huffman").decompress(loaded)
        assert np.abs(out - data).max() <= 1e-3

    def test_compress_only_producer_can_materialize_delta_blobs(self, rng, tmp_path):
        """A producer that never decodes its own stream still saves
        self-contained files, even for drift-rebuild (delta) blobs."""
        from repro.compress.fileio import load_compressed, save_compressed

        shape = (17, 17)
        base = rng.standard_normal(shape).cumsum(0).cumsum(1)
        comp = MgardCompressor.for_shape(shape, 1e-4, backend="huffman")
        scratch = {}
        blobs = []
        frames = []
        for t in range(6):
            # drift hard enough to force delta rebuilds
            frame = base + rng.standard_normal(shape).cumsum(0) * 0.05 * t
            frames.append(frame)
            blobs.append(
                comp.compress(frame, scratch=scratch, refresh_codebooks=(t == 0))
            )
        kinds = {
            k
            for b in blobs
            for s in b.headers[0]["segments"]
            for k in (("delta",) if "table_delta" in s
                      else ("ref",) if "table_ref" in s else ())
        }
        for t, b in enumerate(blobs):
            save_compressed(tmp_path / f"{t}.mgz", b, scratch=scratch)
            loaded, hier = load_compressed(tmp_path / f"{t}.mgz")
            out = MgardCompressor(hier, 1e-4, backend="huffman").decompress(loaded)
            assert np.abs(out - frames[t]).max() <= 1e-4, (t, kinds)

    def test_decode_chain_caches_are_pruned(self, rng):
        """Long streams must not grow the decode caches without bound."""
        sizes = [3000]
        scratch, dec = {}, {}
        for t in range(40):
            # force a rebuild every step: fresh disjoint alphabets
            bins = (rng.integers(0, 50, 3000) + 100 * t).astype(np.int64)
            p, h = encode_classes(
                bins, sizes, backend="huffman", scratch=scratch, refresh=(t == 0)
            )
            flat, _ = decode_classes(p, h, scratch=dec)
            np.testing.assert_array_equal(flat, bins)
        from repro.compress.lossless import _TABLE_CHAIN_WINDOW

        assert len(dec.get("decode_tables", {})) <= _TABLE_CHAIN_WINDOW
        assert len(dec.get("decode_table_objs", {})) <= _TABLE_CHAIN_WINDOW

    def test_untagged_compressors_do_not_share_plan_scratch(self, rng):
        from repro.compress.plan import compression_plan

        hier = hierarchy_for((17, 17))
        before = dict(compression_plan((17, 17), 1e-3, backend="huffman").scratch)
        a = TimeSeriesCompressor(hier, 1e-3, backend="huffman")
        b = TimeSeriesCompressor(hier, 1e-3, backend="huffman")
        assert a._scratch is not b._scratch
        plan = compression_plan((17, 17), 1e-3, backend="huffman")
        assert dict(plan.scratch) == before  # nothing leaked into the plan

    def test_timeseries_reuse_beats_rebuild_on_bytes(self, rng):
        shape = (33, 33)
        base = rng.standard_normal(shape).cumsum(0).cumsum(1)
        drift = rng.standard_normal(shape).cumsum(1) * 0.01
        frames = [base + t * drift for t in range(8)]
        tol = 1e-3 * float(base.max() - base.min())
        hier = hierarchy_for(shape)
        reused = TimeSeriesCompressor(
            hier, tol, backend="huffman", reuse_codebooks=True
        ).compress(frames)
        rebuilt = TimeSeriesCompressor(
            hier, tol, backend="huffman", reuse_codebooks=False
        ).compress(frames)
        assert reused.nbytes < rebuilt.nbytes
        tsd = TimeSeriesCompressor(hier, tol, backend="huffman")
        for orig, rec in zip(frames, tsd.decompress(reused)):
            assert np.abs(rec - orig).max() <= tol


class TestStreamBehindProducer:
    def _frames(self, rng, n, shape=(17, 17)):
        base = rng.standard_normal(shape).cumsum(0).cumsum(1)
        return [base * (1 + 0.02 * t) for t in range(n)], base

    def test_reader_follows_mid_append(self, rng, tmp_path):
        frames, base = self._frames(rng, 7)
        tol = 1e-3 * float(np.abs(base).max())
        writer = StepStreamWriter(tmp_path, base.shape, tol=tol, key_interval=3)
        for t in range(4):
            writer.append(frames[t], time=float(t))
        reader = StepStreamReader(tmp_path)
        assert reader.stream_mode == "compressed"
        assert reader.n_steps == 4
        assert np.abs(reader.read_step(3) - frames[3]).max() <= tol
        # producer keeps appending; the reader refreshes and catches up
        for t in range(4, 7):
            writer.append(frames[t], time=float(t))
            assert reader.refresh() == t + 1
            assert np.abs(reader.read_step(t) - frames[t]).max() <= tol
        # random access backward re-rolls from a key frame
        assert np.abs(reader.read_step(1) - frames[1]).max() <= tol

    def test_refactored_mode_reader_follows_too(self, rng, tmp_path):
        frames, base = self._frames(rng, 3)
        writer = StepStreamWriter(tmp_path, base.shape)
        writer.append(frames[0])
        reader = StepStreamReader(tmp_path)
        assert reader.n_steps == 1
        writer.append(frames[1])
        assert reader.refresh() == 2
        field, _ = reader.read(1, k=reader.hier.L + 1)
        np.testing.assert_allclose(field, frames[1], atol=1e-9)

    def test_mode_guards(self, rng, tmp_path):
        frames, base = self._frames(rng, 2)
        tol = 1e-3 * float(np.abs(base).max())
        writer = StepStreamWriter(tmp_path, base.shape, tol=tol)
        writer.append(frames[0])
        reader = StepStreamReader(tmp_path)
        with pytest.raises(StreamError):
            reader.read(0, k=1)
        with pytest.raises(StreamError):
            reader.read_full(0)
        with pytest.raises(StreamError):
            StepStreamWriter(tmp_path, base.shape)  # mode mismatch

    def test_reader_survives_producer_restart_id_collision(self, rng):
        """A restarted producer re-numbers table ids from 0; a reader
        that kept its scratch must not decode with the stale books."""
        sizes = [3000]
        dec = {}
        first = rng.integers(-5, 6, 3000).astype(np.int64)
        scratch_a = {}
        p, h = encode_classes(first, sizes, backend="huffman",
                              scratch=scratch_a, refresh=True)
        np.testing.assert_array_equal(decode_classes(p, h, scratch=dec)[0], first)
        # "restart": a fresh encoder scratch restarts ids at 0 with a
        # completely different alphabet
        second = (rng.integers(0, 50, 3000) + 1000).astype(np.int64)
        scratch_b = {}
        p2, h2 = encode_classes(second, sizes, backend="huffman",
                                scratch=scratch_b, refresh=True)
        flat, _ = decode_classes(p2, h2, scratch=dec)  # same reader scratch
        np.testing.assert_array_equal(flat, second)
        # and references into the new chain resolve with the new book
        p3, h3 = encode_classes(second, sizes, backend="huffman", scratch=scratch_b)
        flat3, _ = decode_classes(p3, h3, scratch=dec)
        np.testing.assert_array_equal(flat3, second)

    def test_writer_reopen_rejects_changed_settings(self, rng, tmp_path):
        frames, base = self._frames(rng, 2)
        tol = 1e-3 * float(np.abs(base).max())
        w = StepStreamWriter(tmp_path, base.shape, tol=tol, key_interval=4)
        w.append(frames[0])
        with pytest.raises(StreamError, match="tol"):
            StepStreamWriter(tmp_path, base.shape, tol=tol * 10, key_interval=4)
        with pytest.raises(StreamError, match="key_interval"):
            StepStreamWriter(tmp_path, base.shape, tol=tol, key_interval=2)
        with pytest.raises(StreamError, match="backend"):
            StepStreamWriter(tmp_path, base.shape, tol=tol, key_interval=4,
                             backend="zlib")

    def test_writer_reopen_continues_stream(self, rng, tmp_path):
        frames, base = self._frames(rng, 4)
        tol = 1e-3 * float(np.abs(base).max())
        w1 = StepStreamWriter(tmp_path, base.shape, tol=tol, key_interval=2)
        w1.append(frames[0])
        w1.append(frames[1])
        w2 = StepStreamWriter(tmp_path, base.shape, tol=tol, key_interval=2)
        assert w2.n_steps == 2
        w2.append(frames[2])
        reader = StepStreamReader(tmp_path)
        for t in range(3):
            assert np.abs(reader.read_step(t) - frames[t]).max() <= tol


class TestBackwardCompatibility:
    """Blobs in the pre-segmentation layout must still decode."""

    def _legacy_encode_classes(self, bins, sizes, backend):
        """The container layout exactly as written before this refactor."""
        bins = np.ascontiguousarray(bins, dtype=np.int64).ravel()
        if backend == "zlib":
            bounds = np.cumsum([0] + sizes)
            parts, dtypes = [], []
            for a, b in zip(bounds[:-1], bounds[1:]):
                seg = bins[a:b]
                dt = _narrow_dtype(seg)
                parts.append(seg.astype(dt).tobytes())
                dtypes.append(dt.str)
            payload = zlib.compress(b"".join(parts), 6)
            header = {
                "backend": "zlib",
                "dtypes": dtypes,
                "n": int(bins.size),
                "class_sizes": sizes,
            }
            return payload, header
        payload, header = huffman_encode(bins)
        header["backend"] = "huffman"
        header["class_sizes"] = sizes
        return payload, header

    @pytest.mark.parametrize("backend", ["zlib", "huffman"])
    def test_legacy_blob_fixture_decodes(self, rng, backend):
        sizes = [9, 100, 0, 1, 2048]
        bins = rng.integers(-300, 300, sum(sizes)).astype(np.int64)
        payload, header = self._legacy_encode_classes(bins, sizes, backend)
        assert "segments" not in header  # genuinely the old layout
        # survive a JSON round trip, like a blob loaded from disk
        header = json.loads(json.dumps(header))
        flat, got = decode_classes(payload, header)
        assert got == sizes
        np.testing.assert_array_equal(flat, bins)

    def test_legacy_blob_through_compressor(self, rng):
        """A CompressedData carrying a legacy header decompresses."""
        shape = (17, 17)
        data = rng.standard_normal(shape).cumsum(0).cumsum(1)
        comp = MgardCompressor.for_shape(shape, 1e-3, backend="zlib")
        blob = comp.compress(data)
        bins, got = decode_classes(blob.payloads[0], blob.headers[0])
        legacy_payload, legacy_header = self._legacy_encode_classes(
            bins, got, "zlib"
        )
        blob.payloads = [legacy_payload]
        blob.headers = [json.loads(json.dumps(legacy_header))]
        assert np.abs(comp.decompress(blob) - data).max() <= 1e-3


class TestRunPipeline:
    def test_matches_serial_results(self):
        stages = [lambda x: x + 1, lambda x: x * 3, lambda x: x - 2]
        items = list(range(20))
        serial = run_pipeline(stages, items, executor="serial")
        parallel = run_pipeline(stages, items, executor=_par(3))
        expected = [(i + 1) * 3 - 2 for i in items]
        assert serial.results == expected
        assert parallel.results == expected
        assert len(serial.stage_busy_seconds) == 3

    def test_stateful_stage_sees_items_in_order(self):
        seen = []
        stages = [lambda x: x * 2, lambda x: (seen.append(x), x)[1]]
        out = run_pipeline(stages, list(range(30)), executor=_par(4))
        assert seen == [2 * i for i in range(30)]
        assert out.results == [2 * i for i in range(30)]

    def test_stage_using_shared_parallel_executor_does_not_deadlock(self, rng):
        """A stage may itself fan out through the ambient executor."""
        shared = get_executor("parallel:2")
        bins = rng.integers(-5, 6, 4000).astype(np.int64)

        def encode_stage(x):
            p, h = encode_classes(bins, [4000], backend="huffman", executor=shared)
            return x + len(p)

        out = run_pipeline([encode_stage, lambda x: x], list(range(6)),
                           executor=shared)
        assert len(out.results) == 6

    def test_failure_does_not_hang(self):
        def boom(x):
            if x == 3:
                raise RuntimeError("boom")
            return x

        with pytest.raises(RuntimeError):
            run_pipeline([boom, lambda x: x], list(range(6)), executor=_par(2))

    def test_root_cause_not_masked_by_cancelled_items(self):
        """The caller gets the stage's real exception, not the generic
        abort from items that were merely cancelled behind it."""
        import time as _time

        def slow_then_fail(x):
            if x == 3:
                raise ValueError("the real failure")
            _time.sleep(0.02)
            return x

        with pytest.raises(ValueError, match="the real failure"):
            run_pipeline(
                [slow_then_fail, lambda x: x], list(range(8)), executor=_par(4)
            )

    def test_stage_sees_no_later_items_after_failure(self):
        """A stateful stage must never record items past a failure —
        otherwise a stream writer would persist frames at wrong steps."""
        for trial in range(5):  # the race is timing-dependent; hammer it
            seen = []

            def record(x):
                if x == 1:
                    raise RuntimeError("boom")
                seen.append(x)
                return x

            with pytest.raises(RuntimeError):
                run_pipeline(
                    [lambda x: x, record], list(range(8)), executor=_par(4)
                )
            assert seen == [0], (trial, seen)

    def test_validation(self):
        with pytest.raises(ValueError):
            run_pipeline([], [1, 2])
