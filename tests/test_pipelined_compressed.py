"""Fully-overlapped compressed-mode streaming (PR 4).

Contracts:

* the closed-loop prediction split (``prepare``/``encode_prepared`` on
  the spatial compressor, ``predict_residual``/``encode_residual`` on
  the time-series compressor, ``predict_step``/``encode_predicted`` on
  the stream writer) is *bit-identical* to the fused ``append`` path —
  containers, headers, and reconstructions;
* a pipelined compressed stream (predict → encode → write through
  :func:`run_pipeline`'s in-order stage gates) emits byte-identical
  step files for every executor backend, including ≥3-step code-book
  delta chains, and stays readable by a live-following consumer;
* the process backend's Huffman block *encode* (shm-staged symbol
  ranges, coordinator prefix sum, offset-shift word-pack merge) is
  bit-identical to serial;
* :meth:`StepStreamReader.refresh` rejects shrunken (torn mid-replace)
  manifest snapshots, so compressed-mode random access keeps rolling
  forward from the nearest key frame.
"""

import json
import threading

import numpy as np
import pytest

import repro.compress.huffman as H
from repro.cluster.pipeline import run_pipeline
from repro.compress.mgard import MgardCompressor
from repro.compress.timeseries import TimeSeriesCompressor
from repro.core.grid import hierarchy_for
from repro.io.stream import StepStreamReader, StepStreamWriter, StreamError
from repro.io.workflow import run_streaming_pipeline
from repro.parallel import get_executor
from repro.workloads.synthetic import skewed_bins

BACKEND_SPECS = ("serial", "thread:4", "process:2")


def drifting_frames(rng, shape=(17, 17), n=8, amp=0.04):
    base = rng.standard_normal(shape).cumsum(0).cumsum(1)
    drift = np.roll(base, 1, axis=0) * amp
    return [base + t * drift for t in range(n)], base


# ----------------------------------------------------------------------
# the prediction split, layer by layer


class TestPredictionSplit:
    def test_prepare_encode_equals_compress(self, rng):
        data = rng.standard_normal((17, 17)).cumsum(0).cumsum(1)
        tol = 1e-3 * float(np.abs(data).max())
        comp = MgardCompressor.for_shape(data.shape, tol, backend="huffman")
        fused = comp.compress(data)
        split = comp.encode_prepared(comp.prepare(data))
        assert fused.payloads == split.payloads
        assert json.dumps(fused.headers) == json.dumps(split.headers)
        assert fused.steps == split.steps

    def test_reconstruct_prepared_matches_decompress(self, rng):
        data = rng.standard_normal((9, 9, 9)).cumsum(0)
        tol = 1e-2 * float(np.abs(data).max())
        comp = MgardCompressor.for_shape(data.shape, tol)
        prep = comp.prepare(data)
        recon = comp.reconstruct_prepared(prep)
        blob = comp.encode_prepared(prep)
        # entropy coding is lossless, so the feedback path must equal
        # the full round trip *bit for bit*, not just within tol
        np.testing.assert_array_equal(recon, comp.decompress(blob))
        assert np.abs(recon - data).max() <= tol

    def test_prepare_rejects_wrong_shape_on_encode(self, rng):
        a = MgardCompressor.for_shape((17, 17), 1e-3)
        b = MgardCompressor.for_shape((33, 17), 1e-3)
        prep = a.prepare(rng.standard_normal((17, 17)))
        with pytest.raises(ValueError, match="shape"):
            b.encode_prepared(prep)

    def test_timeseries_split_equals_fused(self, rng):
        frames, base = drifting_frames(rng, n=9)
        tol = 1e-3 * float(np.abs(base).max())
        hier = hierarchy_for(base.shape)

        fused = TimeSeriesCompressor(hier, tol, key_interval=4, backend="huffman")
        split = TimeSeriesCompressor(hier, tol, key_interval=4, backend="huffman")
        for t, frame in enumerate(frames):
            blob_f, key_f = fused.append(frame)
            plan = split.predict_residual(frame)
            assert plan.index == t
            blob_s, key_s = split.encode_residual(plan)
            assert key_f == key_s
            assert blob_f.payloads == blob_s.payloads
            assert json.dumps(blob_f.headers) == json.dumps(blob_s.headers)

    def test_prediction_runs_ahead_of_encode(self, rng):
        """The decoded-feedback dependency lives only in the predict
        half: all frames can be predicted before any is encoded."""
        frames, base = drifting_frames(rng, n=6)
        tol = 1e-3 * float(np.abs(base).max())
        hier = hierarchy_for(base.shape)
        ref = TimeSeriesCompressor(hier, tol, key_interval=3, backend="huffman")
        ahead = TimeSeriesCompressor(hier, tol, key_interval=3, backend="huffman")
        plans = [ahead.predict_residual(f) for f in frames]  # all up front
        for frame, plan in zip(frames, plans):
            blob_f, _ = ref.append(frame)
            blob_a, _ = ahead.encode_residual(plan)
            assert blob_f.payloads == blob_a.payloads
            assert json.dumps(blob_f.headers) == json.dumps(blob_a.headers)


# ----------------------------------------------------------------------
# pipelined compressed streams: bit identity + live reader


class TestPipelinedCompressedStream:
    @pytest.mark.parametrize("spec", BACKEND_SPECS)
    def test_pipelined_equals_fused_per_backend(self, rng, tmp_path, spec):
        """predict→encode→write through the overlapped pipeline emits
        the same bytes as fused append, for every codec backend —
        across a key interval long enough for ≥3-step code-book delta
        chains (key, then 5 chained residual steps)."""
        frames, base = drifting_frames(rng, n=7, amp=0.06)
        tol = 1e-3 * float(np.abs(base).max())

        fused_dir = tmp_path / f"fused-{spec.replace(':', '_')}"
        fused = StepStreamWriter(
            fused_dir, base.shape, tol=tol, key_interval=6, executor=spec
        )
        for f in frames:
            fused.append(f)

        m = run_streaming_pipeline(
            frames,
            workdir=tmp_path / f"pipe-{spec.replace(':', '_')}",
            executor="thread:4",
            keep_stream=True,
            mode="compressed",
            tol=tol,
            key_interval=6,
            codec_executor=spec,
        )
        assert m.mode == "compressed" and m.backend == "huffman"
        assert m.stage_names == ("predict", "encode", "write")
        pipe_dir = tmp_path / f"pipe-{spec.replace(':', '_')}" / "pipelined"
        for t in range(len(frames)):
            name = f"step_{t:06d}.mgz"
            assert (pipe_dir / name).read_bytes() == (
                fused_dir / name
            ).read_bytes(), f"{spec}: step {t} differs"
        # chain actually contains table references (not all full tables)
        reader = StepStreamReader(pipe_dir)
        for t in range(len(frames)):
            assert np.abs(reader.read_step(t) - frames[t]).max() <= tol

    def test_delta_chain_headers_reference_books(self, rng, tmp_path):
        """≥3 consecutive non-key steps ship table_ref (or ref+delta)
        headers, never a fresh full table each."""
        frames, base = drifting_frames(rng, n=6)
        tol = 1e-3 * float(np.abs(base).max())
        w = StepStreamWriter(tmp_path, base.shape, tol=tol, key_interval=6)
        preds = [w.predict_step(f) for f in frames]
        for pred in preds:
            w.commit_step(w.encode_predicted(pred))
        from repro.compress.fileio import load_compressed

        refs = 0
        for t in range(2, 6):  # steps 2.. ride the chain re-based at 1
            blob, _ = load_compressed(tmp_path / f"step_{t:06d}.mgz")
            for seg in blob.headers[0]["segments"]:
                if "table_ref" in seg:
                    refs += 1
        assert refs > 0

    def test_reader_follows_live_pipelined_producer(self, rng, tmp_path):
        frames, base = drifting_frames(rng, n=8)
        tol = 1e-3 * float(np.abs(base).max())
        writer = StepStreamWriter(tmp_path, base.shape, tol=tol, key_interval=3)
        started = threading.Event()

        def predict(frame):
            started.set()
            return writer.predict_step(frame)

        def encode(pred):
            return writer.encode_predicted(pred)

        def write(prep):
            return writer.commit_step(prep)

        worker = threading.Thread(
            target=run_pipeline,
            args=([predict, encode, write], frames),
            kwargs={"executor": "thread:4"},
        )
        worker.start()
        try:
            started.wait(timeout=30)
            reader = None
            seen = 0
            deadline = 300
            while seen < len(frames) and deadline:
                if reader is None:
                    try:
                        reader = StepStreamReader(tmp_path)
                    except StreamError:
                        pass  # manifest not yet written
                else:
                    n = reader.refresh()
                    while seen < n:
                        field = reader.read_step(seen)
                        assert np.abs(field - frames[seen]).max() <= tol
                        seen += 1
                if seen < len(frames):
                    deadline -= 1
                    threading.Event().wait(0.01)
        finally:
            worker.join(timeout=60)
        assert seen == len(frames)
        assert not worker.is_alive()

    def test_unknown_mode_rejected(self, rng):
        frames, _ = drifting_frames(rng, n=1)
        with pytest.raises(ValueError, match="mode"):
            run_streaming_pipeline(frames, mode="zstd")

    def test_predict_step_requires_compressed_stream(self, rng, tmp_path):
        base = rng.standard_normal((17, 17))
        w = StepStreamWriter(tmp_path, base.shape)  # refactored
        with pytest.raises(StreamError, match="compressed"):
            w.predict_step(base)
        with pytest.raises(StreamError, match="compressed"):
            w.encode_predicted(None)


# ----------------------------------------------------------------------
# process-parallel Huffman encode


class TestProcessHuffmanEncode:
    def test_bit_identical_odd_length_with_escapes(self, rng):
        n = 3 * H._BLOCK_SYMBOLS + 1234  # not block- or sync-aligned
        vals = skewed_bins(n)
        book_src = skewed_bins(n // 2)
        code = H.build_code(book_src, reserve_escape=True)
        vals[:: n // 64] = rng.integers(2**50, 2**60, vals[:: n // 64].size)
        proc = get_executor("process:2")
        ps, hs = H.huffman_encode(vals, code=code)
        pp, hp = H.huffman_encode(vals, code=code, executor=proc)
        assert ps == pp
        assert json.dumps(hs) == json.dumps(hp)
        np.testing.assert_array_equal(H.huffman_decode(pp, hp), vals)

    def test_stats_and_guard_parity(self, rng):
        n = 4 * H._BLOCK_SYMBOLS
        base = skewed_bins(n)
        code = H.build_code(base, reserve_escape=True)
        data = base.copy()
        data[::53] = rng.integers(2**40, 2**50, data[::53].size)
        proc = get_executor("process:2")
        ss, sp = {}, {}
        p1, h1 = H.huffman_encode(data, code=code, stats=ss)
        p2, h2 = H.huffman_encode(data, code=code, stats=sp, executor=proc)
        assert p1 == p2 and h1 == h2
        assert ss == sp and sp["n_escaped"] > 0
        tight = {"max_bits_per_symbol": 0.01}
        assert H.huffman_encode(data, code=code, executor=proc, guard=tight) == (
            None,
            None,
        )

    def test_local_guard_skip_with_global_pass_repacks(self, rng):
        """Escapes concentrated in one worker's range trip its local
        pack-skip hint while the stream globally passes the guard; the
        coordinator must re-pack that range and still emit serial
        bytes."""
        n = 4 * H._BLOCK_SYMBOLS
        base = skewed_bins(n)
        code = H.build_code(base, reserve_escape=True)
        data = base.copy()
        tail = slice(3 * n // 4, None)  # all escapes land in range 2 of 2
        data[tail] = rng.integers(2**40, 2**50, n - 3 * n // 4)
        proc = get_executor("process:2")
        # pick a bound between the global rate and the hot range's rate
        _, href = H.huffman_encode(data, code=code)
        global_bps = href["bits"] / n
        guard = {"max_bits_per_symbol": global_bps * 1.2}
        ps, hs = H.huffman_encode(data, code=code, guard=guard)
        assert ps is not None  # global pass
        pp, hp = H.huffman_encode(data, code=code, guard=guard, executor=proc)
        assert ps == pp and hs == hp

    def test_escapeless_book_raises_through_pool(self):
        code = H.build_code(np.arange(8, dtype=np.int64))
        alien = np.full(3 * H._BLOCK_SYMBOLS, 99, dtype=np.int64)
        with pytest.raises(ValueError, match="escape"):
            H.huffman_encode(alien, code=code, executor=get_executor("process:2"))
        # ... and the guard turns the same condition into a rebuild signal
        assert H.huffman_encode(
            alien,
            code=code,
            executor=get_executor("process:2"),
            guard={"max_bits_per_symbol": 64},
        ) == (None, None)

    def test_shift_words_is_pack_at_offset(self, rng):
        """Packing at bit offset s == packing at 0 then shifting by s."""
        vals = skewed_bins(2048)
        code = H.build_code(vals)
        c_codes, c_lens, _, _ = H._chunkify(vals, code)
        offsets = np.zeros(c_codes.size + 1, dtype=np.int64)
        np.cumsum(c_lens, out=offsets[1:])
        at_zero = H._pack_chunks_words(c_codes, c_lens, offsets)
        for s in (0, 1, 17, 63):
            direct = H._pack_chunks_words(c_codes, c_lens, offsets + s)
            shifted = H._shift_words(at_zero, s)
            m = min(direct.size, shifted.size)
            np.testing.assert_array_equal(shifted[:m], direct[:m])
            assert not np.any(shifted[m:]) and not np.any(direct[m:])

    def test_shm_unavailable_falls_back(self, rng, monkeypatch):
        from repro.parallel import shm

        def boom(*a, **k):
            raise shm.ShmUnavailable("nope")

        monkeypatch.setattr(shm, "share_array", boom)
        vals = skewed_bins(3 * H._BLOCK_SYMBOLS)
        ps, hs = H.huffman_encode(vals)
        pp, hp = H.huffman_encode(vals, executor=get_executor("process:2"))
        assert ps == pp and hs == hp


# ----------------------------------------------------------------------
# torn-manifest tolerance on the random-access path


class TestReaderShrunkenManifest:
    def _stream(self, rng, tmp_path, n=7):
        frames, base = drifting_frames(rng, n=n)
        tol = 1e-3 * float(np.abs(base).max())
        w = StepStreamWriter(tmp_path, base.shape, tol=tol, key_interval=3)
        for f in frames:
            w.append(f)
        return frames, tol

    def test_shrunken_snapshot_kept_and_random_access_rolls(self, rng, tmp_path):
        frames, tol = self._stream(rng, tmp_path)
        reader = StepStreamReader(tmp_path)
        assert np.abs(reader.read_step(6) - frames[6]).max() <= tol

        manifest = tmp_path / "manifest.json"
        full = manifest.read_text()
        doc = json.loads(full)
        doc["steps"] = doc["steps"][:4]  # mid-replace stale view
        manifest.write_text(json.dumps(doc))
        assert reader.refresh() == len(frames)  # longer snapshot kept
        # random access past the shrunken view still rolls from the
        # nearest key frame (step 3 here), through undamaged step files
        assert np.abs(reader.read_step(5) - frames[5]).max() <= tol
        manifest.write_text(full)
        assert reader.refresh() == len(frames)
        assert np.abs(reader.read_step(6) - frames[6]).max() <= tol

    def test_torn_text_then_random_access(self, rng, tmp_path):
        frames, tol = self._stream(rng, tmp_path)
        reader = StepStreamReader(tmp_path)
        manifest = tmp_path / "manifest.json"
        full = manifest.read_text()
        manifest.write_text(full[: len(full) // 2])  # torn JSON
        assert reader.refresh() == len(frames)
        assert np.abs(reader.read_step(4) - frames[4]).max() <= tol
        manifest.write_text(full)

    def test_persistently_shrunken_stream_raises(self, rng, tmp_path):
        frames, _ = self._stream(rng, tmp_path)
        reader = StepStreamReader(tmp_path)
        manifest = tmp_path / "manifest.json"
        doc = json.loads(manifest.read_text())
        doc["steps"] = doc["steps"][:2]
        manifest.write_text(json.dumps(doc))
        with pytest.raises(StreamError, match="behind"):
            for _ in range(20):
                reader.refresh()

    def test_growth_resets_failure_count(self, rng, tmp_path):
        frames, _ = self._stream(rng, tmp_path)
        reader = StepStreamReader(tmp_path)
        manifest = tmp_path / "manifest.json"
        full = manifest.read_text()
        doc = json.loads(full)
        doc["steps"] = doc["steps"][:3]
        shrunk = json.dumps(doc)
        for _ in range(5):
            manifest.write_text(shrunk)
            assert reader.refresh() == len(frames)
            manifest.write_text(full)
            assert reader.refresh() == len(frames)  # healthy poll resets


# ----------------------------------------------------------------------
# CLI


class TestPipelineCli:
    def test_mode_and_json(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.setenv("REPRO_BENCH_SCALE", "ci")
        out = tmp_path / "BENCH_pipeline.json"
        assert main(["pipeline", "--mode", "compressed", "--json", str(out)]) == 0
        text = capsys.readouterr().out
        assert "compressed mode" in text and "predict" in text
        doc = json.loads(out.read_text())
        assert doc["mode"] == "compressed"
        assert doc["backend"] == "huffman"
        assert doc["cpu_count"] >= 1
        assert doc["stage_names"] == ["predict", "encode", "write"]
        assert doc["modeled_makespan_s"] <= doc["modeled_sequential_s"] + 1e-12

    def test_default_mode_refactored(self, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.setenv("REPRO_BENCH_SCALE", "ci")
        assert main(["pipeline"]) == 0
        assert "refactored mode" in capsys.readouterr().out
