"""End-to-end integration tests across subsystems."""

import numpy as np
import pytest

from repro.analysis.isosurface import contour_length, feature_accuracy
from repro.compress.mgard import MgardCompressor
from repro.core.grid import TensorHierarchy
from repro.core.refactor import Refactorer
from repro.io.container import RefactoredFileReader, write_refactored
from repro.kernels.metered import CpuRefEngine, GpuSimEngine
from repro.workloads.grayscott import simulate


class TestGrayScottPipeline:
    """The paper's data path: simulation -> refactor -> store -> analyze."""

    @pytest.fixture(scope="class")
    def field(self):
        return simulate((65, 65), steps=1200, params="stripes")

    def test_refactor_roundtrip_on_simulation_output(self, field):
        r = Refactorer(field.shape)
        np.testing.assert_allclose(
            r.recompose(r.decompose(field)), field, atol=1e-10
        )

    def test_progressive_feature_accuracy(self, field):
        r = Refactorer(field.shape)
        cc = r.refactor(field)
        iso = float(0.5 * (field.min() + field.max()))
        exact = contour_length(field, iso)
        accs = [
            feature_accuracy(contour_length(cc.reconstruct(k), iso), exact)
            for k in range(1, cc.n_classes + 1)
        ]
        assert accs[-1] > 0.9999
        # a strict prefix already reaches the paper's ~95% regime
        assert max(accs[:-2]) > 0.9

    def test_file_then_compress_consistency(self, field, tmp_path):
        r = Refactorer(field.shape)
        cc = r.refactor(field)
        path = tmp_path / "sim.rprc"
        write_refactored(path, cc, attrs={"source": "gray-scott"})
        reloaded = RefactoredFileReader(path).to_coefficient_classes()
        np.testing.assert_array_equal(
            reloaded.reconstruct(), cc.reconstruct()
        )
        # compress the same field with a bound tied to its range
        tol = 1e-3 * float(field.max() - field.min() + 1e-30)
        comp = MgardCompressor(r.hier, tol)
        blob = comp.compress(field)
        assert np.abs(comp.decompress(blob) - field).max() <= tol
        assert blob.compression_ratio() > 3


class TestEngineParityFullPipeline:
    def test_all_engines_produce_identical_refactorings(self, rng):
        shape = (33, 17, 9)
        data = rng.standard_normal(shape)
        h = TensorHierarchy.from_shape(shape)
        from repro.core.decompose import decompose

        base = decompose(data, h)
        for engine in (GpuSimEngine(), CpuRefEngine()):
            np.testing.assert_array_equal(decompose(data, h, engine), base)

    def test_metered_speedup_matches_table5_regime(self, rng):
        shape = (513, 513)
        data = rng.standard_normal(shape)
        h = TensorHierarchy.from_shape(shape)
        from repro.core.decompose import decompose

        gpu = GpuSimEngine()
        cpu = CpuRefEngine()
        decompose(data, h, gpu)
        decompose(data, h, cpu)
        speedup = cpu.clock / gpu.clock
        # paper Table V, 513^2 Summit: 19.46x; our model ~25x; demand the band
        assert 10 < speedup < 60


class TestRefactorerSurface:
    def test_repr_and_properties(self):
        r = Refactorer((33, 17))
        assert r.shape == (33, 17)
        assert r.levels == 5
        assert r.n_classes == 6
        assert "33" in repr(r)

    def test_reconstruct_checks_grid(self, rng):
        r1 = Refactorer((17, 17))
        r2 = Refactorer((9, 9))
        cc = r1.refactor(rng.standard_normal((17, 17)))
        with pytest.raises(ValueError):
            r2.reconstruct(cc)

    def test_public_package_exports(self):
        import repro

        assert repro.__version__
        for name in ("Refactorer", "TensorHierarchy", "decompose", "recompose"):
            assert hasattr(repro, name)
