"""Smoke-run the fast examples as real subprocesses.

The heavyweight showcase examples (multi-minute Gray–Scott runs) are
exercised by the benchmark harness; here we run the quick ones exactly
as a user would (``python examples/<name>.py``) so import errors, API
drift, or broken output formatting in the examples fail CI.
"""

import os
import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"
SRC = EXAMPLES.parent / "src"

FAST_EXAMPLES = ["quickstart.py", "tiered_storage.py", "multi_gpu_scaling.py"]


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_example_runs(name):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=300,
        env=env,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "example produced no output"


def test_all_examples_exist_and_have_docstrings():
    scripts = sorted(EXAMPLES.glob("*.py"))
    assert len(scripts) >= 8
    for script in scripts:
        text = script.read_text()
        assert text.startswith("#!/usr/bin/env python"), script.name
        assert '"""' in text.split("\n", 2)[1] or '"""' in text, script.name
