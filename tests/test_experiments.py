"""Tests for the experiment generators: the paper's qualitative findings.

These tests pin the *shapes* of the paper's results: who wins, how
trends move with size/stride/streams, where crossovers fall.  Absolute
numbers are covered by EXPERIMENTS.md, not asserted here (the model is
first-order by design).
"""

import numpy as np
import pytest

from repro.experiments import (
    ablation_sweep,
    bench_scale,
    fig7_mass_throughput,
    fig8_streams,
    fig9_weak_scaling,
    fig10_workflow,
    fig11_mgard,
    format_ablations,
    format_fig7,
    format_fig8,
    format_fig9,
    format_fig10,
    format_fig11,
    format_kernel_table,
    format_table4,
    format_table5,
    format_table6,
    kernel_speedup_table,
    table4_breakdown,
    table5_end_to_end,
    table6_node_level,
)


class TestFig7:
    def test_lpf_dominates(self):
        for p in fig7_mass_throughput(1025):
            assert p.lpf_gpu_gbps > p.naive_gpu_gbps
            # on grids big enough to fill a launch, LPF also beats the CPU
            if p.grid_side >= 17:
                assert p.lpf_gpu_gbps > p.cpu_gbps

    def test_naive_collapses_exponentially_with_stride(self):
        pts = fig7_mass_throughput(4097)
        top = pts[0].naive_gpu_gbps
        deep = [p for p in pts if p.stride >= 256][0].naive_gpu_gbps
        assert top / deep > 50

    def test_lpf_sustains_until_small_grids(self):
        pts = fig7_mass_throughput(4097)
        # within the first few levels LPF holds >50% of its peak
        assert pts[2].lpf_gpu_gbps > 0.5 * pts[0].lpf_gpu_gbps
        # and only collapses for tiny grids
        assert pts[-1].lpf_gpu_gbps < 0.05 * pts[0].lpf_gpu_gbps

    def test_cpu_degrades_with_stride(self):
        pts = fig7_mass_throughput(4097)
        assert pts[0].cpu_gbps > 2 * pts[-1].cpu_gbps

    def test_format(self):
        assert "mass-matrix" in format_fig7(fig7_mass_throughput(129))


class TestKernelTables:
    @pytest.mark.parametrize("platform", ["desktop", "summit"])
    def test_rows_and_ordering(self, platform):
        rows = kernel_speedup_table(platform, side_2d=2049, side_3d=129)
        assert len(rows) == 5
        by_kernel = {(r.dims, r.kernel): r for r in rows}
        # solver is the least accelerated 2D kernel (the paper's finding)
        sc = by_kernel[("2D", "Solve Correction")]
        for (dims, kern), r in by_kernel.items():
            assert r.min <= r.avg <= r.max
            if dims == "2D" and kern != "Solve Correction":
                assert r.avg > sc.avg
        # 3D coefficients speed up less than 2D coefficients
        assert (
            by_kernel[("3D", "Comp. Coefficients")].max
            < by_kernel[("2D", "Comp. Coefficients")].max
        )

    def test_summit_max_exceeds_desktop(self):
        d = kernel_speedup_table("desktop", 8193, 257)
        s = kernel_speedup_table("summit", 8193, 257)
        d_cc = [r for r in d if r.dims == "2D" and "Coeff" in r.kernel][0]
        s_cc = [r for r in s if r.dims == "2D" and "Coeff" in r.kernel][0]
        assert s_cc.max > d_cc.max

    def test_unknown_platform(self):
        with pytest.raises(ValueError):
            kernel_speedup_table("laptop")

    def test_format(self):
        rows = kernel_speedup_table("desktop", 513, 65)
        assert "desktop" in format_kernel_table(rows, "desktop")


class TestTable4:
    def test_gpu_beats_cpu_per_category(self):
        rows = table4_breakdown(shape_2d=(2049, 2049), shape_3d=(129, 129, 129))
        assert len(rows) == 8
        by = {(r.shape, r.operation, "NVIDIA" in r.hardware): r for r in rows}
        for shape in [(2049, 2049), (129, 129, 129)]:
            for op in ("decompose", "recompose"):
                cpu = by[(shape, op, False)]
                gpu = by[(shape, op, True)]
                # single-stream Table IV regime; 3D at 129^3 is launch-bound
                assert cpu.total > 5 * gpu.total
                # solver dominates the GPU side more than the CPU side
                assert (
                    gpu.seconds["SC"] / gpu.total > cpu.seconds["SC"] / cpu.total
                )

    def test_cpu_has_no_pn_row(self):
        rows = table4_breakdown(shape_2d=(513, 513), shape_3d=(65, 65, 65))
        for r in rows:
            if "NVIDIA" not in r.hardware:
                assert r.seconds["PN"] == 0.0
            else:
                assert r.seconds["PN"] > 0.0

    def test_format(self):
        assert "Table IV" in format_table4(
            table4_breakdown(shape_2d=(513, 513), shape_3d=(65, 65, 65))
        )


class TestTable5:
    def test_speedup_grows_with_size_and_crossover(self):
        rows = table5_end_to_end(sides_2d=(33, 129, 513, 2049), sides_3d=(33, 129))
        two_d = [r for r in rows if len(r.shape) == 2]
        # monotone growth with size
        for a, b in zip(two_d[:-1], two_d[1:]):
            assert b.summit_decompose > a.summit_decompose
            assert b.desktop_decompose > a.desktop_decompose
        # crossover: GPU loses on the smallest grid, wins at scale
        assert two_d[0].summit_decompose < 1.0
        assert two_d[-1].summit_decompose > 50.0

    def test_summit_beats_desktop_at_scale(self):
        rows = table5_end_to_end(sides_2d=(4097,), sides_3d=())
        assert rows[0].summit_decompose > 2 * rows[0].desktop_decompose

    def test_extra_memory_matches_paper_exactly(self):
        rows = table5_end_to_end(sides_2d=(33, 513), sides_3d=(33,))
        by_shape = {r.shape: 100 * r.extra_memory_fraction for r in rows}
        assert by_shape[(33, 33)] == pytest.approx(6.06, abs=0.01)
        assert by_shape[(513, 513)] == pytest.approx(0.39, abs=0.01)
        assert by_shape[(33, 33, 33)] == pytest.approx(0.28, abs=0.01)

    def test_format(self):
        assert "Table V" in format_table5(table5_end_to_end((33,), (33,)))


class TestTable6:
    def test_all_rows_and_ordering(self):
        rows = table6_node_level()
        assert len(rows) == 8
        # Summit's 6-GPU node out-speeds the desktop's single GPU vs 8 cores
        summit_2d = [r for r in rows if "Summit" in r["node"] and len(r["shape"]) == 2]
        desk_2d = [r for r in rows if "desktop" in r["node"] and len(r["shape"]) == 2]
        assert summit_2d[0]["speedup"] > desk_2d[0]["speedup"] > 1

    def test_format(self):
        assert "Table VI" in format_table6(table6_node_level())


class TestFig8:
    def test_shape(self):
        sweeps = fig8_streams(shape=(129, 129, 129))
        assert set(sweeps) == {
            "desktop/decompose",
            "desktop/recompose",
            "summit/decompose",
            "summit/recompose",
        }
        for pts in sweeps.values():
            speeds = [p.speedup for p in pts]
            assert speeds[0] == 1.0
            assert max(speeds) == pytest.approx(speeds[-1], rel=1e-9)  # plateau
            assert 1.5 < max(speeds) < 6.0

    def test_format(self):
        assert "CUDA streams" in format_fig8(fig8_streams(shape=(65, 65, 65)))


class TestFig9:
    def test_near_linear_and_2d_beats_3d(self):
        curves = fig9_weak_scaling(gpu_counts=(1, 64, 4096))
        for pts in curves.values():
            per = [p.aggregate_tbps / p.n_gpus for p in pts]
            assert per[-1] > 0.9 * per[0]
        assert (
            curves["2D/decompose"][-1].aggregate_tbps
            > curves["3D/decompose"][-1].aggregate_tbps
        )

    def test_paper_magnitudes(self):
        curves = fig9_weak_scaling(gpu_counts=(4096,))
        # paper: 45.42 / 40.45 / 17.78 / 19.86 TB/s
        assert 30 < curves["2D/decompose"][0].aggregate_tbps < 70
        assert 12 < curves["3D/decompose"][0].aggregate_tbps < 35

    def test_format(self):
        assert "TB/s" in format_fig9(fig9_weak_scaling(gpu_counts=(1, 4)))


class TestFig10:
    def test_refactoring_pays_off_with_gpu_only(self):
        curves = fig10_workflow(ks=(3, 10), n_writers=4096)
        gpu = curves["write/gpu"]
        cpu = curves["write/cpu"]
        # with GPU refactoring, storing 3 classes cuts the total cost
        assert gpu[0].total_seconds < 0.5 * gpu[1].total_seconds
        # with CPU refactoring the refactor time swamps any I/O saving
        assert cpu[0].total_seconds > 0.8 * cpu[1].total_seconds

    def test_format(self):
        assert "I/O cost" in format_fig10(fig10_workflow(ks=(1, 2)))


class TestFig11:
    def test_offload_shifts_bottleneck_to_entropy(self):
        rows = fig11_mgard(shape=(65, 65, 65), steps=100)
        by = {(r.config, r.operation): r for r in rows}
        cpu = by[("CPU", "compress")]
        gpu = by[("GPU-offload", "compress")]
        assert gpu.total < cpu.total
        # CPU config: refactoring dominates; GPU config: entropy dominates
        assert cpu.refactor_s > cpu.entropy_s
        assert gpu.entropy_s > gpu.refactor_s

    def test_format(self):
        rows = fig11_mgard(shape=(33, 33, 33), steps=50)
        assert "MGARD" in format_fig11(rows)


class TestAblations:
    def test_2d_packing_and_divergence_cost(self):
        rows = {r.name: r for r in ablation_sweep((2049, 2049))}
        assert rows["no node packing"].slowdown > 1.1
        assert rows["divergent warps"].slowdown > 1.02
        assert rows["naive linear kernels"].slowdown > 2.0

    def test_3d_single_stream_cost(self):
        rows = {r.name: r for r in ablation_sweep((129, 129, 129))}
        assert rows["single stream"].slowdown > 1.5

    def test_format(self):
        assert "Ablations" in format_ablations(ablation_sweep((513, 513)))


class TestScaleSelection:
    def test_default_scale(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert bench_scale().name == "paper"

    def test_ci_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "ci")
        assert bench_scale().side_2d == 1025

    def test_invalid_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "galactic")
        with pytest.raises(ValueError):
            bench_scale()


class TestFormatHelpers:
    def test_format_seconds_scales(self):
        from repro.experiments import format_seconds

        assert format_seconds(0) == "0"
        assert format_seconds(5e-7) == "0.5us"
        assert format_seconds(2.5e-3) == "2.50ms"
        assert format_seconds(12.0) == "12.00s"

    def test_format_table_alignment(self):
        from repro.experiments import format_table

        out = format_table(["a", "bbb"], [["1", "2"], ["10", "20"]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert all(len(line) == len(lines[1]) for line in lines[1:])
