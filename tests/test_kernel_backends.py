"""Kernel-launcher seam: backend registry, policy, and bit identity.

The contract under test: every backend behind
:mod:`repro.kernels.launcher` produces *bit-identical* results on every
op, the selection policy (``REPRO_KERNEL_BACKEND`` / override / auto)
resolves as documented, compiled handles are cached per
(op, signature), and a host without numba degrades to the reference
backend — silently under ``auto``, with exactly one warning under a
direct ``numba`` request.

The reference-vs-numba comparisons skip when numba is not installed;
CI's jit job runs them with the compiled backend live and, separately,
with ``REPRO_NO_NUMBA=1`` to exercise the masked fallback on a host
that *does* have numba.
"""

from __future__ import annotations

import os
import subprocess
import sys
import warnings

import numpy as np
import pytest

from repro.compress.huffman import huffman_decode, huffman_encode
from repro.core.grid import hierarchy_for
from repro.kernels import launcher as L
from repro.kernels.autotune import (
    KERNEL_TUNE_SCHEMA,
    autotune,
    autotune_backend,
    clear_backend_cache,
    measure_backend_times,
    select_backend,
)
from repro.kernels.jit import HAVE_NUMBA
from repro.kernels.linear_processing import LinearProcessingKernel

# the package re-exports the autotune *function*, which shadows the
# submodule attribute; fetch the module itself for its private helpers
_autotune_mod = sys.modules["repro.kernels.autotune"]

needs_numba = pytest.mark.skipif(not HAVE_NUMBA, reason="numba not installed")

ALL_OPS = sorted(L.OP_SPECS)

# adversarial op shapes: tiny, 2^k + 1 (the hierarchy's natural sizes),
# and wide batches
ADVERSARIAL_SHAPES = [(1, 2), (2, 3), (3, 5), (7, 17), (33, 65)]
FLAT_SHAPES = [(1,), (7,), (257,), (4097,)]


@pytest.fixture(autouse=True)
def _reset_policy():
    """Leave no policy override or warning latch behind."""
    yield
    L.set_kernel_backend(None)
    L._WARNED_NO_NUMBA = False


# ----------------------------------------------------------------------
# policy resolution


def test_policy_default_is_auto(monkeypatch):
    monkeypatch.delenv("REPRO_KERNEL_BACKEND", raising=False)
    assert L.kernel_backend_policy() == "auto"


def test_env_policy_is_honoured(monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL_BACKEND", "reference")
    assert L.kernel_backend_policy() == "reference"


def test_override_beats_env(monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL_BACKEND", "reference")
    L.set_kernel_backend("auto")
    assert L.kernel_backend_policy() == "auto"


def test_invalid_policy_rejected(monkeypatch):
    with pytest.raises(ValueError, match="kernel backend"):
        L.set_kernel_backend("cuda")
    monkeypatch.setenv("REPRO_KERNEL_BACKEND", "cuda")
    with pytest.raises(ValueError, match="REPRO_KERNEL_BACKEND"):
        L.kernel_backend_policy()


def test_unknown_backend_and_op_rejected():
    with pytest.raises(ValueError, match="unknown kernel backend"):
        L.get_launcher("cuda")
    with pytest.raises(ValueError, match="unknown kernel op"):
        L.resolve("fft", (8,), np.float64)


def test_reference_always_available():
    assert "reference" in L.available_backends()
    assert L.get_launcher("reference").available()


def test_reference_policy_never_dispatches(monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL_BACKEND", "reference")
    ran, out = L.maybe_launch("quantize", (4,), np.float64,
                              np.ones(4), np.ones(4))
    assert ran is False and out is None


# ----------------------------------------------------------------------
# graceful no-numba fallback


@pytest.mark.skipif(HAVE_NUMBA, reason="exercises the numba-less host")
def test_numba_request_warns_once_then_falls_back():
    L._WARNED_NO_NUMBA = False
    L.set_kernel_backend("numba")
    with pytest.warns(RuntimeWarning, match="numba is not installed"):
        lau = L.resolve("mass", (4, 5), np.float64)
    assert lau.name == "reference"
    with warnings.catch_warnings():
        warnings.simplefilter("error")  # second resolve must stay silent
        assert L.resolve("mass", (4, 5), np.float64).name == "reference"


@pytest.mark.skipif(HAVE_NUMBA, reason="exercises the numba-less host")
def test_auto_resolves_to_reference_silently():
    L.set_kernel_backend("auto")
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        for op in ALL_OPS:
            assert L.resolve(op, (8, 9), np.float64).name == "reference"


def test_masked_numba_import_falls_back():
    """REPRO_NO_NUMBA=1 masks numba even where installed (CI fallback)."""
    env = dict(os.environ, REPRO_NO_NUMBA="1")
    env["PYTHONPATH"] = "src"
    code = (
        "from repro.kernels.jit import HAVE_NUMBA\n"
        "from repro.kernels.launcher import available_backends, resolve\n"
        "assert not HAVE_NUMBA\n"
        "assert available_backends() == ['reference']\n"
        "assert resolve('mass', (4, 5), 'float64').name == 'reference'\n"
        "print('ok')\n"
    )
    out = subprocess.run(
        [sys.executable, "-c", code],
        env=env,
        capture_output=True,
        text=True,
        cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    )
    assert out.returncode == 0, out.stderr
    assert out.stdout.strip() == "ok"


# ----------------------------------------------------------------------
# compile cache accounting


def test_compile_cache_hits_are_counted():
    lau = L.ReferenceLauncher()
    sig = L.Signature("float64", 2)
    h1 = lau.compiled("mass", sig)
    h2 = lau.compiled("mass", sig)
    assert h1 is h2
    assert lau.cache_info() == {"entries": 1, "compiles": 1, "cache_hits": 1}
    lau.compiled("mass", L.Signature("float32", 2))  # new signature compiles
    info = lau.cache_info()
    assert info["entries"] == 2 and info["compiles"] == 2


def test_signature_of_uses_first_array():
    sig = L.signature_of(3, np.zeros((4, 5), dtype=np.float32), np.zeros(2))
    assert sig == L.Signature("float32", 2)


# ----------------------------------------------------------------------
# reference twins match the production (segmented) kernels bit for bit
#
# The numba kernels mirror the launcher's whole-axis reference twins,
# so these identities are what anchors the compiled backend to the
# production arithmetic even on hosts without numba.


@pytest.mark.parametrize("m", [5, 17, 65])
@pytest.mark.parametrize("dtype", [np.float64, np.float32])
def test_reference_twins_match_segmented_kernels(m, dtype, rng):
    hier = hierarchy_for((m, m))
    ops = hier.level_ops(hier.L, 0)
    k = LinearProcessingKernel(ops, segment=5, backend="reference")
    v = rng.standard_normal((8, m)).astype(dtype)

    got = L.run_op("reference", "mass", v, ops.h_fine)
    assert got.tobytes() == k.mass_multiply(v).tobytes()

    got = L.run_op(
        "reference", "transfer", v, ops.coarse_pos, ops.interval_detail,
        ops.w_left, ops.w_right, ops.m_detail,
    )
    assert got.tobytes() == k.transfer_multiply(v).tobytes()

    from repro.core.solver import thomas_factor

    cp, denom = thomas_factor(ops)
    vc = rng.standard_normal((8, ops.m_coarse)).astype(dtype)
    got = L.run_op(
        "reference", "solve", vc, ops.mass_bands_coarse[0, 1:], cp, denom
    )
    assert got.tobytes() == k.solve(vc).tobytes()


def test_reference_quantize_twin_matches_numpy(rng):
    flat = rng.standard_normal(999) * 40.0
    inv = np.repeat(1.0 / np.asarray([0.01, 0.02, 0.4]), 333)
    got = L.run_op("reference", "quantize", flat, inv)
    assert np.array_equal(got, np.round(flat * inv).astype(np.int64))
    back = L.run_op("reference", "dequantize", got, 1.0 / inv)
    assert np.array_equal(back, got.astype(np.float64) * (1.0 / inv))


def test_empty_arrays_roundtrip():
    got = L.run_op("reference", "quantize", np.empty(0), np.empty(0))
    assert got.size == 0 and got.dtype == np.int64
    got = L.run_op("reference", "dequantize", np.empty(0, np.int64), np.empty(0))
    assert got.size == 0 and got.dtype == np.float64


# ----------------------------------------------------------------------
# reference-vs-numba bit identity (CI jit job)


def _op_args(op, shape, dtype, rng):
    return L.OP_SPECS[op].make_inputs(shape, np.dtype(dtype), rng)


@needs_numba
@pytest.mark.parametrize("op", ALL_OPS)
@pytest.mark.parametrize("dtype", [np.float64, np.float32])
def test_numba_matches_reference_bitwise(op, dtype, rng):
    shapes = ADVERSARIAL_SHAPES if op in ("mass", "transfer", "solve") else FLAT_SHAPES
    for shape in shapes:
        args = _op_args(op, shape, dtype, rng)
        ref = L.run_op("reference", op, *args)
        jit = L.run_op("numba", op, *args)
        a, b = np.asarray(ref), np.asarray(jit)
        assert a.dtype == b.dtype and a.shape == b.shape
        assert a.tobytes() == b.tobytes(), f"{op} diverges at {shape} {dtype}"


@needs_numba
@pytest.mark.parametrize("op", ["mass", "transfer", "solve"])
def test_numba_matches_reference_noncontiguous(op, rng):
    args = list(_op_args(op, (64, 33), np.float64, rng))
    args[0] = args[0][::2]  # strided batch view
    ref = L.run_op("reference", op, *args)
    jit = L.run_op("numba", op, *args)
    assert np.asarray(ref).tobytes() == np.asarray(jit).tobytes()


@needs_numba
def test_numba_empty_quantize(rng):
    ref = L.run_op("reference", "quantize", np.empty(0), np.empty(0))
    jit = L.run_op("numba", "quantize", np.empty(0), np.empty(0))
    assert np.array_equal(ref, jit) and jit.dtype == np.int64


@needs_numba
def test_huffman_container_identical_across_backends(rng):
    values = np.rint(rng.standard_normal(20000) * 4.0).astype(np.int64)
    values[::4097] = 1 << 40  # force escapes through the packed path
    L.set_kernel_backend("reference")
    p_ref, h_ref = huffman_encode(values)
    L.set_kernel_backend("numba")
    p_jit, h_jit = huffman_encode(values)
    assert p_ref == p_jit and h_ref == h_jit
    assert np.array_equal(huffman_decode(p_jit, h_jit), values)
    L.set_kernel_backend("reference")
    assert np.array_equal(huffman_decode(p_jit, h_jit), values)


# ----------------------------------------------------------------------
# measured backend autotuning


def test_measure_backend_times_reports_available_backends(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TUNE_CACHE", str(tmp_path / "tune.json"))
    clear_backend_cache()
    times = measure_backend_times("mass", (8, 9), np.float64, repeats=1)
    assert "reference" in times and times["reference"] > 0
    assert set(times) <= {"reference", "numba"}


def test_select_backend_without_numba_is_reference_and_diskless(
    tmp_path, monkeypatch
):
    if HAVE_NUMBA:
        pytest.skip("exercises the numba-less host")
    cache = tmp_path / "tune.json"
    monkeypatch.setenv("REPRO_TUNE_CACHE", str(cache))
    clear_backend_cache()
    assert select_backend("mass", (64, 65), np.float64) == "reference"
    assert not cache.exists()  # nothing measured, nothing persisted


@needs_numba
def test_select_backend_persists_and_caches(tmp_path, monkeypatch):
    import json

    cache = tmp_path / "tune.json"
    monkeypatch.setenv("REPRO_TUNE_CACHE", str(cache))
    clear_backend_cache()
    first = select_backend("quantize", (4096,), np.float64)
    assert first in ("reference", "numba")
    doc = json.loads(cache.read_text())
    assert doc["schema"] == KERNEL_TUNE_SCHEMA
    assert len(doc["entries"]) == 1
    (entry,) = doc["entries"].values()
    assert entry["why"] == "measured" and entry["backend"] == first
    # second call must come from the in-memory cache, not re-measure
    assert select_backend("quantize", (4096,), np.float64) == first
    clear_backend_cache()


def test_stale_schema_table_is_discarded(tmp_path, monkeypatch):
    import json

    cache = tmp_path / "tune.json"
    cache.write_text(json.dumps({
        "schema": KERNEL_TUNE_SCHEMA + 1,
        "entries": {"mass|float64|2|13": {"backend": "numba"}},
    }))
    monkeypatch.setenv("REPRO_TUNE_CACHE", str(cache))
    clear_backend_cache()
    assert _autotune_mod._load_table() == {}
    clear_backend_cache()


def test_corrupt_table_is_discarded(tmp_path, monkeypatch):
    cache = tmp_path / "tune.json"
    cache.write_text("{not json")
    monkeypatch.setenv("REPRO_TUNE_CACHE", str(cache))
    clear_backend_cache()
    assert _autotune_mod._load_table() == {}
    clear_backend_cache()


def test_autotune_backend_records_measured_verdict(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TUNE_CACHE", str(tmp_path / "tune.json"))
    clear_backend_cache()
    res = autotune_backend("dequantize", (2048,))
    assert res.why == "measured"
    assert res.backend in ("reference", "numba")
    assert res.best_seconds > 0 and res.baseline_seconds > 0
    clear_backend_cache()


def test_modeled_autotune_records_modeled_verdict():
    res = autotune((65, 65))
    assert res.why == "modeled" and res.backend == "reference"


# ----------------------------------------------------------------------
# dispatch sites honour per-instance backend overrides


def test_kernel_backend_param_forces_reference(rng, monkeypatch):
    # even under a (bogus-on-this-host) numba policy, an explicit
    # per-kernel backend="reference" must keep the NumPy path silent
    monkeypatch.setenv("REPRO_KERNEL_BACKEND", "numba")
    hier = hierarchy_for((17, 17))
    ops = hier.level_ops(hier.L, 0)
    k = LinearProcessingKernel(ops, segment=5, backend="reference")
    v = rng.standard_normal((4, 17))
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        out = k.mass_multiply(v)
    assert out.shape == v.shape
