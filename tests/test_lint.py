"""``repro-lint``: the whole-program invariant checker (PR 10).

Three layers of coverage:

* **framework** — suppression grammar (tokenized comments, mandatory
  justification, docstring markers inert), fingerprinted baseline,
  syntax-error findings, CLI exit codes and JSON shape;
* **per-rule seeded regressions** — for each of the seven rules, a tiny
  fixture tree that plants the exact regression the rule exists to
  catch, asserted through the same CLI entry CI runs (exit 1), plus the
  suppressed and clean variants (exit 0);
* **the real tree** — the repository itself lints clean, and the
  generated fault-site registry proves every site instrumented and
  exercised.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from tools.reprolint import make_rules, rule_names, run_lint
from tools.reprolint.cli import main as lint_main
from tools.reprolint.rules import ALL_RULES

REPO_ROOT = Path(__file__).resolve().parents[1]

#: a minimal faults.py so the fault-site rule has a registry to check
FAULTS_SRC = """
KINDS = ("crash", "error", "truncate", "bitflip", "kill", "delay")
SITES = {
    "alpha.step.pre": "before the write",
    "alpha.read.*": "per-extent reads",
}
"""


def make_tree(root: Path, files: dict[str, str]) -> Path:
    for rel, src in files.items():
        p = root / rel
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(textwrap.dedent(src))
    return root


def lint_json(root: Path, *args, capsys) -> tuple[int, dict]:
    code = lint_main(["--root", str(root), "--json", *args])
    return code, json.loads(capsys.readouterr().out)


def rules_of(doc: dict, *, new_only: bool = True) -> set[str]:
    return {
        f["rule"]
        for f in doc["findings"]
        if not new_only or not (f["suppressed"] or f["baselined"])
    }


# ----------------------------------------------------------------------
# framework: suppressions, baseline, hygiene, CLI


class TestFramework:
    def test_suppression_needs_justification(self, tmp_path, capsys):
        make_tree(tmp_path, {
            "src/repro/mod.py": """
                try:
                    step()
                except BaseException:  # reprolint: ok crash-swallow
                    pass
            """,
        })
        code, doc = lint_json(tmp_path, capsys=capsys)
        assert code == 1
        assert rules_of(doc) == {"lint-hygiene", "crash-swallow"}

    def test_justified_suppression_accepted(self, tmp_path, capsys):
        make_tree(tmp_path, {
            "src/repro/mod.py": """
                try:
                    step()
                except BaseException:  # reprolint: ok crash-swallow - recorded by the host harness
                    pass
            """,
        })
        code, doc = lint_json(tmp_path, capsys=capsys)
        assert code == 0
        supp = [f for f in doc["findings"] if f["suppressed"]]
        assert [f["rule"] for f in supp] == ["crash-swallow"]

    def test_standalone_comment_binds_next_line(self, tmp_path, capsys):
        make_tree(tmp_path, {
            "src/repro/mod.py": """
                try:
                    step()
                # reprolint: ok crash-swallow - host re-raises from the report
                except BaseException:
                    pass
            """,
        })
        code, _ = lint_json(tmp_path, capsys=capsys)
        assert code == 0

    def test_docstring_marker_is_inert(self, tmp_path, capsys):
        make_tree(tmp_path, {
            "src/repro/mod.py": '''
                def f():
                    """Suppress findings with '# reprolint: ok <rule>'."""
                    return 1
            ''',
        })
        code, doc = lint_json(tmp_path, capsys=capsys)
        assert code == 0 and not doc["findings"]

    def test_syntax_error_is_a_finding(self, tmp_path, capsys):
        make_tree(tmp_path, {"src/repro/mod.py": "def broken(:\n"})
        code, doc = lint_json(tmp_path, capsys=capsys)
        assert code == 1
        assert rules_of(doc) == {"parse"}

    def test_baseline_grandfathers_then_catches_new(self, tmp_path, capsys):
        bad = """
            try:
                step()
            except BaseException:
                pass
        """
        make_tree(tmp_path, {"src/repro/mod.py": bad})
        assert lint_main(["--root", str(tmp_path), "--update-baseline"]) == 0
        capsys.readouterr()
        code, doc = lint_json(tmp_path, capsys=capsys)
        assert code == 0
        assert [f["rule"] for f in doc["findings"] if f["baselined"]] == ["crash-swallow"]
        # a second regression is new even with the baseline armed
        make_tree(tmp_path, {"src/repro/other.py": bad})
        code, doc = lint_json(tmp_path, capsys=capsys)
        assert code == 1
        assert [f["path"] for f in doc["findings"] if not f["baselined"]] == [
            "src/repro/other.py"
        ]

    def test_baseline_fingerprint_survives_line_drift(self, tmp_path, capsys):
        make_tree(tmp_path, {
            "src/repro/mod.py": """
                try:
                    step()
                except BaseException:
                    pass
            """,
        })
        assert lint_main(["--root", str(tmp_path), "--update-baseline"]) == 0
        capsys.readouterr()
        # prepend code: the finding moves lines but keeps its fingerprint
        p = tmp_path / "src/repro/mod.py"
        p.write_text("import os\n\n\n" + p.read_text())
        code, _ = lint_json(tmp_path, capsys=capsys)
        assert code == 0

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for name in rule_names():
            assert name in out
        assert len(ALL_RULES) == 7

    def test_unknown_rule_and_path_are_usage_errors(self, tmp_path):
        make_tree(tmp_path, {"src/repro/mod.py": "x = 1\n"})
        assert lint_main(["--root", str(tmp_path), "--rules", "no-such"]) == 2
        assert lint_main(["--root", str(tmp_path), "no/such/dir"]) == 2

    def test_json_shape(self, tmp_path, capsys):
        make_tree(tmp_path, {"src/repro/mod.py": "x = 1\n"})
        code, doc = lint_json(tmp_path, capsys=capsys)
        assert code == 0
        assert doc["version"] == 1
        assert set(doc["summary"]) == {"total", "new", "suppressed", "baselined", "by_rule"}
        assert doc["files_checked"] == 1
        assert sorted(doc["rules"]) == sorted(rule_names())


# ----------------------------------------------------------------------
# per-rule seeded regressions, through the CLI entry that CI runs


class TestFaultSiteRule:
    def test_unregistered_literal_site(self, tmp_path, capsys):
        make_tree(tmp_path, {
            "src/repro/faults.py": FAULTS_SRC,
            "src/repro/mod.py": """
                from repro import faults
                faults.crash_point("alpha.step.typo")
            """,
        })
        code, doc = lint_json(tmp_path, "--rules", "fault-site", capsys=capsys)
        assert code == 1
        msgs = [f["message"] for f in doc["findings"]]
        assert any("alpha.step.typo" in m and "not registered" in m for m in msgs)

    def test_family_pattern_matches(self, tmp_path, capsys):
        make_tree(tmp_path, {
            "src/repro/faults.py": FAULTS_SRC,
            "src/repro/mod.py": """
                from repro import faults
                faults.delay_point("alpha.read.extent 3")
                faults.crash_point("alpha.step.pre")
            """,
            "tests/test_mod.py": """
                PLAN = "crash@alpha.step.pre:count=1, delay@alpha.read.*"
            """,
        })
        lint_main(["--root", str(tmp_path), "--write-registry"])
        capsys.readouterr()
        code, doc = lint_json(tmp_path, "--rules", "fault-site", capsys=capsys)
        assert code == 0 and not doc["findings"]

    def test_dynamic_site_requires_annotation(self, tmp_path, capsys):
        make_tree(tmp_path, {
            "src/repro/faults.py": FAULTS_SRC,
            "src/repro/mod.py": """
                from repro import faults
                def f(what):
                    faults.crash_point(f"alpha.read.{what}")
            """,
        })
        code, doc = lint_json(tmp_path, "--rules", "fault-site", capsys=capsys)
        assert code == 1
        assert any("dynamic fault-site" in f["message"] for f in doc["findings"])
        # the annotation names the family and clears the finding
        make_tree(tmp_path, {
            "src/repro/mod.py": """
                from repro import faults
                def f(what):
                    faults.crash_point(f"alpha.read.{what}")  # reprolint: site alpha.read.*
            """,
        })
        code, doc = lint_json(tmp_path, "--rules", "fault-site", capsys=capsys)
        assert not any("dynamic fault-site" in f["message"] for f in doc["findings"])

    def test_unexercised_and_uninstrumented_sites(self, tmp_path, capsys):
        make_tree(tmp_path, {
            "src/repro/faults.py": FAULTS_SRC,
            "src/repro/mod.py": """
                from repro import faults
                faults.crash_point("alpha.step.pre")
            """,
        })
        code, doc = lint_json(tmp_path, "--rules", "fault-site", capsys=capsys)
        assert code == 1
        msgs = " | ".join(f["message"] for f in doc["findings"])
        assert "'alpha.step.pre' is not exercised" in msgs
        assert "'alpha.read.*' is never instrumented" in msgs

    def test_stale_registry_snapshot(self, tmp_path, capsys):
        make_tree(tmp_path, {
            "src/repro/faults.py": FAULTS_SRC,
            "src/repro/mod.py": """
                from repro import faults
                faults.crash_point("alpha.step.pre")
                faults.delay_point("alpha.read.x")
            """,
            "tests/test_mod.py": 'PLAN = "crash@alpha.*"\n',
        })
        code, doc = lint_json(tmp_path, "--rules", "fault-site", capsys=capsys)
        assert code == 1
        assert any("out of date" in f["message"] for f in doc["findings"])
        assert lint_main(["--root", str(tmp_path), "--write-registry"]) == 0
        capsys.readouterr()
        code, doc = lint_json(tmp_path, "--rules", "fault-site", capsys=capsys)
        assert code == 0

    def test_template_plan_widening_is_not_vacuous(self, tmp_path, capsys):
        # an f-string plan template exercises nothing by itself; the
        # site literals formatted into it carry the evidence
        make_tree(tmp_path, {
            "src/repro/faults.py": FAULTS_SRC,
            "src/repro/mod.py": """
                from repro import faults
                faults.crash_point("alpha.step.pre")
                faults.delay_point("alpha.read.x")
            """,
            "tests/test_mod.py": """
                SITES = ["alpha.step.pre"]
                def plan(site):
                    return f"crash@{site}:count=1"
            """,
        })
        lint_main(["--root", str(tmp_path), "--write-registry"])
        capsys.readouterr()
        code, doc = lint_json(tmp_path, "--rules", "fault-site", capsys=capsys)
        msgs = " | ".join(f["message"] for f in doc["findings"])
        assert "'alpha.read.*' is not exercised" in msgs  # template proved nothing
        assert "alpha.step.pre" not in msgs  # the literal proved this one


class TestCrashSwallowRule:
    BAD = {
        "bare": """
            try:
                step()
            except:
                pass
        """,
        "broad": """
            try:
                step()
            except BaseException as e:
                log(e)
        """,
        "tuple": """
            try:
                step()
            except (ValueError, BaseException):
                pass
        """,
    }

    @pytest.mark.parametrize("variant", sorted(BAD))
    def test_swallowing_handler_flagged(self, tmp_path, capsys, variant):
        make_tree(tmp_path, {"src/repro/mod.py": self.BAD[variant]})
        code, doc = lint_json(tmp_path, "--rules", "crash-swallow", capsys=capsys)
        assert code == 1 and rules_of(doc) == {"crash-swallow"}

    def test_propagating_handlers_pass(self, tmp_path, capsys):
        make_tree(tmp_path, {
            "src/repro/mod.py": """
                try:
                    step()
                except BaseException as e:
                    raise RuntimeError("wrapped") from e

                try:
                    step()
                except BaseException as e:
                    fut.set_exception(e)

                try:
                    step()
                except BaseException:
                    os._exit(17)

                try:
                    step()
                except Exception:
                    pass  # narrow: InjectedCrash still escapes
            """,
        })
        code, doc = lint_json(tmp_path, "--rules", "crash-swallow", capsys=capsys)
        assert code == 0 and not doc["findings"]


class TestAtomicPublishRule:
    def test_raw_final_name_write_flagged(self, tmp_path, capsys):
        make_tree(tmp_path, {
            "src/repro/io/bad.py": """
                def save(path, payload):
                    with open(path, "wb") as f:
                        f.write(payload)
            """,
        })
        code, doc = lint_json(tmp_path, "--rules", "atomic-publish", capsys=capsys)
        assert code == 1 and rules_of(doc) == {"atomic-publish"}

    def test_write_bytes_flagged_outside_io_pass(self, tmp_path, capsys):
        make_tree(tmp_path, {
            "src/repro/io/bad.py": """
                def save(path, payload):
                    path.write_bytes(payload)
            """,
            # the rule only patrols repro/io — the same write elsewhere is fine
            "src/repro/other/ok.py": """
                def save(path, payload):
                    path.write_bytes(payload)
            """,
        })
        code, doc = lint_json(tmp_path, "--rules", "atomic-publish", capsys=capsys)
        assert code == 1
        assert [f["path"] for f in doc["findings"]] == ["src/repro/io/bad.py"]

    def test_temp_then_replace_idiom_passes(self, tmp_path, capsys):
        make_tree(tmp_path, {
            "src/repro/io/good.py": """
                import os
                def publish(path, payload):
                    tmp = path.with_suffix(".tmp")
                    with open(tmp, "wb") as f:
                        f.write(payload)
                    os.replace(tmp, path)

                def read(path):
                    with open(path, "rb") as f:
                        return f.read()
            """,
        })
        code, doc = lint_json(tmp_path, "--rules", "atomic-publish", capsys=capsys)
        assert code == 0 and not doc["findings"]


class TestShmLifetimeRule:
    def test_uncovered_staging_flagged(self, tmp_path, capsys):
        make_tree(tmp_path, {
            "src/repro/mod.py": """
                from repro.parallel.shm import share_array
                def stage(arr):
                    ref, block = share_array(arr)
                    return ref
            """,
        })
        code, doc = lint_json(tmp_path, "--rules", "shm-lifetime", capsys=capsys)
        assert code == 1 and rules_of(doc) == {"shm-lifetime"}

    def test_raw_shared_memory_create_flagged(self, tmp_path, capsys):
        make_tree(tmp_path, {
            "src/repro/mod.py": """
                from multiprocessing.shared_memory import SharedMemory
                def stage(n):
                    shm = SharedMemory(create=True, size=n)
                    return shm.name
            """,
        })
        code, _ = lint_json(tmp_path, "--rules", "shm-lifetime", capsys=capsys)
        assert code == 1

    def test_try_finally_coverage_passes(self, tmp_path, capsys):
        make_tree(tmp_path, {
            "src/repro/mod.py": """
                from repro.parallel.shm import share_array
                def inside_try(arr):
                    try:
                        ref, block = share_array(arr)
                        use(ref)
                    finally:
                        block.destroy()

                def stage_then_try(arr):
                    ref, block = share_array(arr)
                    try:
                        use(ref)
                    finally:
                        block.release()

                def attach_only(name):
                    from multiprocessing.shared_memory import SharedMemory
                    return SharedMemory(name=name)  # no create: not staging
            """,
        })
        code, doc = lint_json(tmp_path, "--rules", "shm-lifetime", capsys=capsys)
        assert code == 0 and not doc["findings"]


class TestImportBoundaryRule:
    def test_numba_outside_jit_flagged(self, tmp_path, capsys):
        make_tree(tmp_path, {
            "src/repro/kernels/fast.py": "import numba\n",
            "src/repro/kernels/jit.py": "import numba\n",  # the one legal door
        })
        code, doc = lint_json(tmp_path, "--rules", "import-boundary", capsys=capsys)
        assert code == 1
        assert [f["path"] for f in doc["findings"]] == ["src/repro/kernels/fast.py"]

    def test_compress_to_io_edge_flagged(self, tmp_path, capsys):
        make_tree(tmp_path, {
            "src/repro/compress/enc.py": "from ..io import container\n",
            "src/repro/io/container.py": "x = 1\n",
        })
        code, doc = lint_json(tmp_path, "--rules", "import-boundary", capsys=capsys)
        assert code == 1
        assert "repro.compress.enc -> repro.io" in doc["findings"][0]["message"]

    def test_service_to_experiments_and_tools_to_repro(self, tmp_path, capsys):
        make_tree(tmp_path, {
            "src/repro/service/api.py": "import repro.experiments.bench\n",
            "src/tools/helper.py": "from repro import faults\n",
        })
        code, doc = lint_json(tmp_path, "--rules", "import-boundary", capsys=capsys)
        assert code == 1
        assert len(doc["findings"]) == 2

    def test_allowed_directions_pass(self, tmp_path, capsys):
        make_tree(tmp_path, {
            # io -> compress is the sanctioned direction
            "src/repro/io/fileio_user.py": "from ..compress import fileio\n",
            "src/repro/experiments/exp.py": "from repro.service import client\n",
        })
        code, doc = lint_json(tmp_path, "--rules", "import-boundary", capsys=capsys)
        assert code == 0 and not doc["findings"]


class TestLockOrderRule:
    def test_inverted_acquisition_order_is_a_cycle(self, tmp_path, capsys):
        make_tree(tmp_path, {
            "src/repro/mod.py": """
                import threading

                class C:
                    def __init__(self):
                        self.a = threading.RLock()
                        self.b = threading.RLock()

                    def one(self):
                        with self.a:
                            with self.b:
                                pass

                    def two(self):
                        with self.b:
                            with self.a:
                                pass
            """,
        })
        code, doc = lint_json(tmp_path, "--rules", "lock-order", capsys=capsys)
        assert code == 1
        assert any("lock-order inversion" in f["message"] for f in doc["findings"])

    def test_self_deadlock_on_plain_lock(self, tmp_path, capsys):
        make_tree(tmp_path, {
            "src/repro/mod.py": """
                import threading

                class C:
                    def __init__(self):
                        self.a = threading.Lock()

                    def boom(self):
                        with self.a:
                            with self.a:
                                pass
            """,
        })
        code, doc = lint_json(tmp_path, "--rules", "lock-order", capsys=capsys)
        assert code == 1
        assert any("re-acquired" in f["message"] for f in doc["findings"])

    def test_one_hop_method_call_edge(self, tmp_path, capsys):
        make_tree(tmp_path, {
            "src/repro/mod.py": """
                import threading

                class C:
                    def __init__(self):
                        self.a = threading.Lock()

                    def helper(self):
                        with self.a:
                            pass

                    def boom(self):
                        with self.a:
                            self.helper()
            """,
        })
        code, doc = lint_json(tmp_path, "--rules", "lock-order", capsys=capsys)
        assert code == 1
        assert any("self.helper() re-takes" in f["message"] for f in doc["findings"])

    def test_blocking_call_under_lock(self, tmp_path, capsys):
        make_tree(tmp_path, {
            "src/repro/mod.py": """
                import threading
                _lock = threading.Lock()

                def pump(sock):
                    with _lock:
                        return sock.recv(4096)
            """,
        })
        code, doc = lint_json(tmp_path, "--rules", "lock-order", capsys=capsys)
        assert code == 1
        assert any(".recv() can block" in f["message"] for f in doc["findings"])

    def test_consistent_order_and_nested_defs_pass(self, tmp_path, capsys):
        make_tree(tmp_path, {
            "src/repro/mod.py": """
                import threading

                class C:
                    def __init__(self):
                        self.a = threading.RLock()
                        self.b = threading.RLock()

                    def one(self):
                        with self.a:
                            with self.b:
                                pass

                    def also(self):
                        with self.a:
                            with self.b:
                                pass

                    def deferred(self, sock):
                        with self.a:
                            def later():
                                return sock.recv(1)  # runs after release
                            return later
            """,
        })
        code, doc = lint_json(tmp_path, "--rules", "lock-order", capsys=capsys)
        assert code == 0 and not doc["findings"]


class TestDeterminismRule:
    BAD = {
        "wall clock": "import time\ndef enc(x):\n    return time.time()\n",
        "stdlib random": "import random\ndef enc(x):\n    return random.random()\n",
        "unseeded rng": "import numpy as np\ndef enc(x):\n    return np.random.default_rng()\n",
        "legacy global rng": "import numpy as np\ndef enc(x):\n    return np.random.rand(4)\n",
        "set iteration": "def enc(xs):\n    return [f(x) for x in set(xs)]\n",
        "set literal loop": "def enc():\n    for x in {1, 2}:\n        g(x)\n",
    }

    @pytest.mark.parametrize("variant", sorted(BAD))
    def test_nondeterminism_flagged(self, tmp_path, capsys, variant):
        make_tree(tmp_path, {"src/repro/compress/enc.py": self.BAD[variant]})
        code, doc = lint_json(tmp_path, "--rules", "determinism", capsys=capsys)
        assert code == 1 and rules_of(doc) == {"determinism"}

    def test_sanctioned_forms_pass(self, tmp_path, capsys):
        make_tree(tmp_path, {
            "src/repro/compress/enc.py": """
                import time
                import numpy as np

                def enc(x):
                    t0 = time.perf_counter()  # duration metadata, not bytes
                    rng = np.random.default_rng(1234)
                    for k in sorted({1, 2, 3}):
                        g(k)
                    return time.perf_counter() - t0
            """,
            # the byte-identity contract stops at the package boundary
            "src/repro/experiments/exp.py": "import time\nWALL = time.time()\n",
        })
        code, doc = lint_json(tmp_path, "--rules", "determinism", capsys=capsys)
        assert code == 0 and not doc["findings"]


# ----------------------------------------------------------------------
# the real tree


class TestRealTree:
    def test_repository_lints_clean(self):
        report = run_lint(REPO_ROOT, paths=("src", "tests"), rules=make_rules())
        fresh = [f for f in report.findings if not f.suppressed]
        assert not fresh, "\n".join(str(f) for f in fresh)
        # every accepted finding is a justified inline suppression
        assert all(f.suppressed for f in report.findings)
        assert report.exit_code == 0

    def test_fault_site_registry_is_complete(self):
        doc = json.loads(
            (REPO_ROOT / "src/tools/reprolint/fault_sites.json").read_text()
        )
        assert doc["sites"], "registry must not be empty"
        for site, info in doc["sites"].items():
            assert info["instrumented"], f"{site} has no instrumentation"
            assert info["exercised_by"], f"{site} is never exercised by a plan"

    def test_console_entry_matches_module_entry(self):
        import tools.reprolint.cli as cli

        assert callable(cli.main)
