"""Tests for quantization, entropy coding, and the MGARD compressor."""

import numpy as np
import pytest

from repro.compress.huffman import huffman_decode, huffman_encode
from repro.compress.lossless import decode_bins, encode_bins
from repro.compress.mgard import MgardCompressor
from repro.compress.quantizer import Quantizer
from repro.core.grid import TensorHierarchy
from repro.core.refactor import Refactorer
from repro.workloads.synthetic import discontinuous, multiscale, smooth, white_noise


class TestQuantizer:
    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            Quantizer(0.0)
        with pytest.raises(ValueError):
            Quantizer(1.0, mode="quadratic")
        with pytest.raises(ValueError):
            Quantizer(1.0, safety=0.0)

    def test_steps_budget(self):
        q = Quantizer(1.0, mode="uniform", safety=0.5)
        steps = q.steps_for(5)
        assert len(steps) == 5
        # half-bin errors across classes sum to the (safety-scaled) budget
        assert sum(s / 2 for s in steps) == pytest.approx(0.5)

    def test_level_mode_finer_classes_get_larger_bins(self):
        steps = Quantizer(1.0, mode="level").steps_for(6)
        assert all(a < b for a, b in zip(steps[:-1], steps[1:]))

    def test_quantize_dequantize_within_half_bin(self, rng):
        r = Refactorer((33, 33))
        cc = r.refactor(rng.standard_normal((33, 33)))
        q = Quantizer(1e-2)
        qc = q.quantize(cc)
        back = q.dequantize(qc, cc)
        for orig, deq, step in zip(cc.classes, back.classes, qc.steps):
            assert np.abs(orig - deq).max() <= step / 2 + 1e-15

    @pytest.mark.parametrize("field", [smooth, multiscale, discontinuous, white_noise])
    @pytest.mark.parametrize("mode", ["uniform", "level"])
    @pytest.mark.parametrize("tol", [1e-1, 1e-3])
    def test_reconstruction_honours_bound(self, field, mode, tol):
        shape = (65, 65)
        data = field(shape)
        r = Refactorer(shape)
        cc = r.refactor(data)
        q = Quantizer(tol, mode=mode)
        back = q.dequantize(q.quantize(cc), cc)
        approx = back.reconstruct()
        assert np.abs(approx - data).max() <= tol

    def test_class_count_mismatch(self, rng):
        r9 = Refactorer((9, 9))
        r17 = Refactorer((17, 17))
        cc9 = r9.refactor(rng.standard_normal((9, 9)))
        cc17 = r17.refactor(rng.standard_normal((17, 17)))
        q = Quantizer(1e-3)
        with pytest.raises(ValueError):
            q.dequantize(q.quantize(cc9), cc17)


class TestHuffman:
    def test_roundtrip_skewed(self, rng):
        vals = rng.choice([0, 0, 0, 0, 1, -1, 2], size=2000).astype(np.int64)
        p, h = huffman_encode(vals)
        np.testing.assert_array_equal(huffman_decode(p, h), vals)

    def test_roundtrip_single_symbol(self):
        vals = np.full(100, 7, dtype=np.int64)
        p, h = huffman_encode(vals)
        np.testing.assert_array_equal(huffman_decode(p, h), vals)

    def test_roundtrip_with_escapes(self, rng):
        vals = np.concatenate(
            [rng.integers(-3, 3, 500), np.array([2**55, -(2**55), 12345678901])]
        ).astype(np.int64)
        p, h = huffman_encode(vals, max_table=8)
        np.testing.assert_array_equal(huffman_decode(p, h), vals)

    def test_empty_array(self):
        p, h = huffman_encode(np.zeros(0, dtype=np.int64))
        assert huffman_decode(p, h).size == 0

    def test_skewed_beats_fixed_width(self, rng):
        vals = rng.choice([0] * 50 + [1, -1], size=5000).astype(np.int64)
        p, _ = huffman_encode(vals)
        assert len(p) < 5000  # < 1 byte per symbol on a near-constant stream

    def test_truncated_payload_detected(self, rng):
        vals = rng.integers(-5, 5, 100).astype(np.int64)
        p, h = huffman_encode(vals)
        with pytest.raises(ValueError):
            huffman_decode(p[: len(p) // 2], h)


class TestLossless:
    @pytest.mark.parametrize("backend", ["zlib", "huffman"])
    def test_roundtrip(self, backend, rng):
        vals = rng.integers(-100, 100, 3000).astype(np.int64)
        p, h = encode_bins(vals, backend=backend)
        np.testing.assert_array_equal(decode_bins(p, h), vals)

    def test_zlib_narrows_dtype(self, rng):
        vals = rng.integers(-3, 3, 1000).astype(np.int64)
        _, h = encode_bins(vals, backend="zlib")
        assert h["dtype"] == "|i1"

    def test_zlib_wide_values(self):
        vals = np.array([2**40, -(2**40)], dtype=np.int64)
        p, h = encode_bins(vals)
        np.testing.assert_array_equal(decode_bins(p, h), vals)

    def test_unknown_backend(self):
        with pytest.raises(ValueError):
            encode_bins(np.zeros(1, dtype=np.int64), backend="lz4")
        with pytest.raises(ValueError):
            decode_bins(b"", {"backend": "lz4"})

    def test_count_mismatch_detected(self, rng):
        vals = rng.integers(-3, 3, 100).astype(np.int64)
        p, h = encode_bins(vals)
        h["n"] = 99
        with pytest.raises(ValueError):
            decode_bins(p, h)


class TestMgard:
    def test_error_bound_end_to_end(self):
        shape = (65, 65)
        data = multiscale(shape)
        hier = TensorHierarchy.from_shape(shape)
        for tol in (1e-1, 1e-3, 1e-6):
            comp = MgardCompressor(hier, tol)
            blob = comp.compress(data)
            back = comp.decompress(blob)
            assert np.abs(back - data).max() <= tol

    def test_ratio_grows_with_tolerance(self):
        shape = (65, 65)
        data = smooth(shape)
        hier = TensorHierarchy.from_shape(shape)
        ratios = [
            MgardCompressor(hier, tol).compress(data).compression_ratio()
            for tol in (1e-5, 1e-3, 1e-1)
        ]
        assert ratios[0] < ratios[1] < ratios[2]

    def test_smooth_compresses_better_than_noise(self, rng):
        shape = (65, 65)
        hier = TensorHierarchy.from_shape(shape)
        tol = 1e-2
        r_smooth = MgardCompressor(hier, tol).compress(smooth(shape)).compression_ratio()
        r_noise = (
            MgardCompressor(hier, tol).compress(white_noise(shape)).compression_ratio()
        )
        assert r_smooth > 1.5 * r_noise

    def test_level_mode_beats_uniform_on_smooth(self):
        shape = (65, 65)
        data = smooth(shape)
        hier = TensorHierarchy.from_shape(shape)
        level = MgardCompressor(hier, 1e-3, mode="level").compress(data)
        uniform = MgardCompressor(hier, 1e-3, mode="uniform").compress(data)
        assert level.nbytes < uniform.nbytes

    def test_huffman_backend(self):
        shape = (33, 33)
        data = smooth(shape)
        hier = TensorHierarchy.from_shape(shape)
        comp = MgardCompressor(hier, 1e-2, backend="huffman")
        back = comp.decompress(comp.compress(data))
        assert np.abs(back - data).max() <= 1e-2

    def test_shape_mismatch(self, rng):
        h33 = TensorHierarchy.from_shape((33, 33))
        h17 = TensorHierarchy.from_shape((17, 17))
        blob = MgardCompressor(h33, 1e-2).compress(rng.standard_normal((33, 33)))
        with pytest.raises(ValueError):
            MgardCompressor(h17, 1e-2).decompress(blob)

    def test_nonuniform_grid(self, rng):
        from conftest import nonuniform_coords

        shape = (33, 33)
        hier = TensorHierarchy.from_shape(shape, nonuniform_coords(shape, rng))
        data = smooth(shape)
        comp = MgardCompressor(hier, 1e-3)
        back = comp.decompress(comp.compress(data))
        assert np.abs(back - data).max() <= 1e-3

    def test_metered_engines_populate_times(self, rng):
        from repro.kernels.metered import CpuRefEngine, GpuSimEngine

        shape = (257, 257)
        hier = TensorHierarchy.from_shape(shape)
        data = smooth(shape)
        gpu_blob = MgardCompressor(hier, 1e-3, engine=GpuSimEngine()).compress(data)
        assert gpu_blob.times.refactor_modeled is not None
        assert gpu_blob.times.quantize_modeled is not None
        assert gpu_blob.times.transfer_modeled is not None
        cpu_blob = MgardCompressor(hier, 1e-3, engine=CpuRefEngine()).compress(data)
        assert cpu_blob.times.refactor_modeled is not None
        # at 257^2 the modeled GPU refactor is several times faster (Table V)
        assert cpu_blob.times.refactor_modeled > 3 * gpu_blob.times.refactor_modeled
