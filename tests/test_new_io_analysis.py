"""Tests for streaming I/O, spectrum diagnostics, rate-distortion, tracing."""

import json

import numpy as np
import pytest

from repro.analysis.spectrum import class_band_energy, radial_power_spectrum
from repro.compress.rate import bd_rate_gain, rate_distortion_curve
from repro.core.refactor import Refactorer
from repro.gpu.tracing import build_timeline, to_chrome_trace
from repro.io.stream import StepStreamReader, StepStreamWriter, StreamError
from repro.workloads.synthetic import multiscale, smooth


class TestSpectrum:
    def test_pure_tone_peaks_at_its_frequency(self):
        n = 64
        x = np.linspace(0, 1, n, endpoint=False)
        field = np.sin(2 * np.pi * 8 * x)[:, None] * np.ones((1, n))
        k, p = radial_power_spectrum(field, n_bins=32)
        peak = k[int(np.argmax(p[1:])) + 1]
        assert peak == pytest.approx(8.0, abs=1.5)

    def test_class_band_centroids_increase(self):
        shape = (65, 65)
        cc = Refactorer(shape).refactor(multiscale(shape, octaves=6))
        bands = class_band_energy(cc)
        centroids = [b["centroid"] for b in bands if b["energy"] > 1e-12]
        # finer classes carry higher frequencies (allow minor wobble)
        assert centroids[-1] > 2 * centroids[0]
        rising = sum(b > a for a, b in zip(centroids[:-1], centroids[1:]))
        assert rising >= len(centroids) - 2

    def test_energy_partitions_total(self):
        shape = (33, 33)
        data = smooth(shape)
        cc = Refactorer(shape).refactor(data)
        bands = class_band_energy(cc)
        # contributions are a telescoping sum: energies are non-negative
        assert all(b["energy"] >= 0 for b in bands)


class TestRateDistortion:
    @pytest.fixture(scope="class")
    def data(self):
        return multiscale((65, 65))

    def test_curve_monotone(self, data):
        pts = rate_distortion_curve(data, (1e-1, 1e-2, 1e-3, 1e-4))
        rates = [p.bits_per_value for p in pts]
        psnrs = [p.psnr_db for p in pts]
        assert all(a < b for a, b in zip(rates[:-1], rates[1:]))
        assert all(a < b for a, b in zip(psnrs[:-1], psnrs[1:]))
        for p in pts:
            assert p.max_error <= p.tol

    def test_level_mode_cheaper_at_equal_tolerance(self, data):
        tols = (1e-1, 1e-2, 1e-3, 1e-4)
        level = rate_distortion_curve(data, tols, mode="level")
        uniform = rate_distortion_curve(data, tols, mode="uniform")
        # level budgeting optimizes for the Linf *guarantee*: at every
        # tolerance it spends fewer bits (uniform over-delivers PSNR)
        for lv, un in zip(level, uniform):
            assert lv.bits_per_value < un.bits_per_value
        # while in PSNR terms the two modes are nearly equivalent
        assert abs(bd_rate_gain(level, uniform)) < 0.5

    def test_bd_rate_disjoint_ranges_rejected(self, data):
        a = rate_distortion_curve(data, (1e-1,))
        b = rate_distortion_curve(data, (1e-6,))
        with pytest.raises(ValueError):
            bd_rate_gain(a, b)


class TestStepStream:
    def test_write_read_roundtrip(self, tmp_path, rng):
        shape = (33, 33)
        writer = StepStreamWriter(tmp_path, shape)
        frames = [rng.standard_normal(shape) for _ in range(3)]
        for t, f in enumerate(frames):
            assert writer.append(f, time=float(t)) == t
        reader = StepStreamReader(tmp_path)
        assert reader.n_steps == 3
        for t, f in enumerate(frames):
            full = reader.read_full(t).reconstruct()
            np.testing.assert_allclose(full, f, atol=1e-9)

    def test_tolerance_driven_read(self, tmp_path):
        shape = (65, 65)
        writer = StepStreamWriter(tmp_path, shape)
        writer.append(smooth(shape))
        reader = StepStreamReader(tmp_path)
        coarse, coarse_bytes = reader.read(0, tol=1e-1)
        fine, fine_bytes = reader.read(0, tol=1e-8)
        assert coarse_bytes < fine_bytes
        assert coarse.shape == shape

    def test_read_arg_validation(self, tmp_path, rng):
        writer = StepStreamWriter(tmp_path, (17, 17))
        writer.append(rng.standard_normal((17, 17)))
        reader = StepStreamReader(tmp_path)
        with pytest.raises(ValueError):
            reader.read(0)
        with pytest.raises(ValueError):
            reader.read(0, k=1, tol=1e-3)
        with pytest.raises(StreamError):
            reader.read(5, k=1)

    def test_reopen_appends(self, tmp_path, rng):
        shape = (17, 17)
        StepStreamWriter(tmp_path, shape).append(rng.standard_normal(shape))
        w2 = StepStreamWriter(tmp_path, shape)
        assert w2.n_steps == 1
        w2.append(rng.standard_normal(shape))
        assert StepStreamReader(tmp_path).n_steps == 2

    def test_shape_conflict_rejected(self, tmp_path, rng):
        StepStreamWriter(tmp_path, (17, 17))
        with pytest.raises(StreamError):
            StepStreamWriter(tmp_path, (9, 9))

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(StreamError):
            StepStreamReader(tmp_path / "nope")


class TestTracing:
    def _records(self, rng, shape=(17, 9, 9), n_streams=2):
        from repro.core.decompose import decompose
        from repro.kernels.launches import EngineOptions
        from repro.kernels.metered import GpuSimEngine

        eng = GpuSimEngine(opts=EngineOptions(n_streams=n_streams))
        decompose(rng.standard_normal(shape), engine=eng)
        return eng

    def test_timeline_covers_clock(self, rng):
        eng = self._records(rng)
        events = build_timeline(eng.records, eng.device)
        assert events
        end = max(e.end_s for e in events)
        assert end == pytest.approx(eng.clock, rel=0.05)

    def test_events_non_overlapping_per_stream(self, rng):
        eng = self._records(rng, n_streams=4)
        events = build_timeline(eng.records, eng.device)
        by_stream: dict[int, list] = {}
        for e in events:
            by_stream.setdefault(e.stream, []).append(e)
        for evs in by_stream.values():
            evs.sort(key=lambda e: e.start_s)
            for a, b in zip(evs[:-1], evs[1:]):
                assert b.start_s >= a.end_s - 1e-12

    def test_chrome_trace_is_valid_json(self, rng):
        eng = self._records(rng)
        blob = to_chrome_trace(build_timeline(eng.records, eng.device))
        parsed = json.loads(blob)
        assert parsed["traceEvents"]
        assert all(ev["ph"] == "X" for ev in parsed["traceEvents"])
