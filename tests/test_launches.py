"""Tests for launch-record builders and the Algorithm-3 walk."""

import numpy as np
import pytest

from repro.core.decompose import decompose, recompose
from repro.core.grid import TensorHierarchy
from repro.kernels import launches as L
from repro.kernels.metered import CPU_BASELINE_OPTIONS, CpuRefEngine, GpuSimEngine


class TestEngineOptions:
    def test_defaults(self):
        o = L.EngineOptions()
        assert o.framework == "lpf" and o.pack_nodes and o.divergence_free

    def test_invalid_framework(self):
        with pytest.raises(ValueError):
            L.EngineOptions(framework="magic")

    def test_invalid_streams(self):
        with pytest.raises(ValueError):
            L.EngineOptions(n_streams=0)


class TestBuilders:
    def test_coefficients_divergence_flag(self):
        a = L.coefficients_launch((9, 9), opts=L.EngineOptions(), level=1, stride=4)
        b = L.coefficients_launch(
            (9, 9), opts=L.EngineOptions(divergence_free=False), level=1, stride=4
        )
        assert a.divergence == 1.0 and b.divergence > 1.0

    def test_coefficients_3d_occupancy_cap(self):
        a = L.coefficients_launch((9, 9, 9), opts=L.EngineOptions(), level=1, stride=1)
        b = L.coefficients_launch((9, 9), opts=L.EngineOptions(), level=1, stride=1)
        assert a.occupancy_cap < b.occupancy_cap == 1.0

    def test_packing_removes_stride(self):
        packed = L.mass_launch((9, 9), 0, opts=L.EngineOptions(), level=1, stride=16)
        strided = L.mass_launch(
            (9, 9), 0, opts=L.EngineOptions(pack_nodes=False), level=1, stride=16
        )
        assert packed.stride == 1 and strided.stride == 16

    def test_naive_is_vector_wise(self):
        o = L.EngineOptions(framework="naive", pack_nodes=False)
        rec = L.mass_launch((64, 128), 1, opts=o, level=1, stride=2)
        assert rec.threads == 64  # one thread per vector
        assert rec.n_launches == 1

    def test_lpf_3d_slices(self):
        rec = L.mass_launch((65, 33, 17), 0, opts=L.EngineOptions(), level=1, stride=1)
        # plane = axis0 x largest other (33); slices along the remaining (17)
        assert rec.n_launches == 17

    def test_transfer_output_bytes_shrink(self):
        rec = L.transfer_launch((17, 17), 0, 9, opts=L.EngineOptions(), level=1, stride=1)
        assert rec.bytes_written < rec.bytes_read

    def test_solve_chain_length(self):
        rec = L.solve_launch((9, 17), 0, opts=L.EngineOptions(), level=1, stride=1)
        assert rec.chain_length == 18
        assert rec.threads == 17  # one per vector

    def test_solve_elementwise_pcr(self):
        rec = L.solve_launch(
            (9, 17), 0, opts=L.EngineOptions(framework="elementwise"), level=1, stride=1
        )
        assert rec.threads == 9 * 17
        assert rec.chain_length < 18  # log depth

    def test_category_mapping_total(self):
        h = TensorHierarchy.from_shape((17, 17))
        cats = {
            L.category_of(r)
            for r in L.iter_decompose_launches(h, L.EngineOptions(), "decompose")
        }
        assert cats == {"CC", "MM", "TM", "SC", "MC", "PN"}


class TestWalkMatchesEngines:
    @pytest.mark.parametrize("shape", [(33, 17), (9, 9, 9), (65,), (16, 7)])
    @pytest.mark.parametrize("operation", ["decompose", "recompose"])
    def test_gpu_engine_records_equal_walk(self, shape, operation, rng):
        h = TensorHierarchy.from_shape(shape)
        eng = GpuSimEngine()
        data = rng.standard_normal(shape)
        if operation == "decompose":
            decompose(data, h, eng)
        else:
            recompose(decompose(data, h), h, eng)
            # drop the decompose records: re-run cleanly
            eng.reset()
            recompose(decompose(data, h), h, eng)
        walk = list(L.iter_decompose_launches(h, eng.opts, operation))
        assert walk == eng.records

    def test_cpu_engine_records_equal_walk(self, rng):
        h = TensorHierarchy.from_shape((33, 17))
        eng = CpuRefEngine()
        decompose(rng.standard_normal((33, 17)), h, eng)
        walk = list(L.iter_decompose_launches(h, CPU_BASELINE_OPTIONS, "decompose"))
        assert walk == eng.records

    def test_walk_rejects_unknown_operation(self):
        h = TensorHierarchy.from_shape((9,))
        with pytest.raises(ValueError):
            list(L.iter_decompose_launches(h, L.EngineOptions(), "transmogrify"))

    def test_trivial_hierarchy_single_copy(self):
        h = TensorHierarchy.from_shape((2, 2))
        recs = list(L.iter_decompose_launches(h, L.EngineOptions(), "decompose"))
        assert len(recs) == 1 and recs[0].name == "copy"


class TestMeteredEngineBookkeeping:
    def test_clock_accumulates_and_resets(self, rng):
        eng = GpuSimEngine()
        decompose(rng.standard_normal((33, 33)), engine=eng)
        assert eng.clock > 0
        assert abs(sum(eng.record_times) - eng.clock) < 1e-12
        report = eng.report()
        assert abs(report["total"] - eng.clock) < 1e-12
        eng.reset()
        assert eng.clock == 0 and not eng.records

    def test_cpu_report_folds_pn_into_mc(self, rng):
        eng = CpuRefEngine()
        decompose(rng.standard_normal((33, 33)), engine=eng)
        report = eng.report()
        assert "PN" not in report
        assert report["MC"] > 0

    def test_gpu_oom_guard(self):
        from repro.gpu.device import V100

        eng = GpuSimEngine(V100)
        big = TensorHierarchy.from_shape((50000, 50000))  # 20 GB > 16 GB
        with pytest.raises(MemoryError):
            eng.begin("decompose", big)

    def test_footprint_accessor(self, rng):
        eng = GpuSimEngine()
        decompose(rng.standard_normal((33, 33)), engine=eng)
        fp = eng.footprint()
        assert fp.solver_bytes == 2 * (33 + 33) * 8
        eng2 = GpuSimEngine()
        with pytest.raises(ValueError):
            eng2.footprint()
