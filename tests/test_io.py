"""Tests for storage tiers, the refactored-data container, and workflows."""

import json

import numpy as np
import pytest

from repro.core.refactor import Refactorer
from repro.io.container import (
    ContainerError,
    RefactoredFileReader,
    RefactoredFileWriter,
    write_refactored,
)
from repro.io.storage import ALPINE_PFS, ARCHIVE_TIER, NVME_TIER, StorageTier, TieredStorage
from repro.io.workflow import model_workflow, run_workflow_demo
from repro.workloads.synthetic import smooth


class TestStorageTier:
    def test_write_seconds_scaling(self):
        t1 = ALPINE_PFS.write_seconds(10**12, n_processes=4096)
        t2 = ALPINE_PFS.write_seconds(2 * 10**12, n_processes=4096)
        assert t2 > t1
        # aggregate-bound at high process counts: bytes dominate
        assert t2 - ALPINE_PFS.latency_s == pytest.approx(
            2 * (t1 - ALPINE_PFS.latency_s)
        )

    def test_per_process_cap(self):
        few = ALPINE_PFS.write_seconds(10**11, n_processes=1)
        many = ALPINE_PFS.write_seconds(10**11, n_processes=512)
        assert few > many

    def test_archive_slowest(self):
        n = 10**11
        assert ARCHIVE_TIER.read_seconds(n, 64) > ALPINE_PFS.read_seconds(n, 64)
        assert NVME_TIER.latency_s < ALPINE_PFS.latency_s

    def test_tiered_placement_spills(self):
        ts = TieredStorage([NVME_TIER, ALPINE_PFS, ARCHIVE_TIER])
        sizes = [100, 200, 400, 800, 1600]
        placement = ts.place_classes(sizes, fast_budget_bytes=750)
        assert placement[0] == 0
        assert placement[-1] >= 1
        assert all(a <= b for a, b in zip(placement[:-1], placement[1:]))

    def test_tiered_read_prefix_only(self):
        ts = TieredStorage([NVME_TIER, ARCHIVE_TIER])
        sizes = [10**9] * 4
        placement = [0, 0, 1, 1]
        fast_only = ts.read_seconds(sizes, placement, n_processes=8, k=2)
        with_archive = ts.read_seconds(sizes, placement, n_processes=8, k=3)
        assert with_archive > fast_only

    def test_empty_tier_list(self):
        with pytest.raises(ValueError):
            TieredStorage([])


class TestContainer:
    def _cc(self, rng, shape=(33, 17)):
        return Refactorer(shape).refactor(rng.standard_normal(shape))

    def test_write_read_roundtrip(self, rng, tmp_path):
        cc = self._cc(rng)
        path = tmp_path / "d.rprc"
        nbytes = write_refactored(path, cc, attrs={"var": "v"})
        assert nbytes == path.stat().st_size
        reader = RefactoredFileReader(path)
        assert reader.shape == (33, 17)
        assert reader.attrs == {"var": "v"}
        back = reader.to_coefficient_classes()
        for a, b in zip(back.classes, cc.classes):
            np.testing.assert_array_equal(a, b)

    def test_prefix_read_bytes(self, rng, tmp_path):
        cc = self._cc(rng)
        path = tmp_path / "d.rprc"
        write_refactored(path, cc)
        reader = RefactoredFileReader(path)
        classes = reader.read_classes(3)
        assert len(classes) == 3
        for got, ref in zip(classes, cc.classes):
            np.testing.assert_array_equal(got, ref)

    def test_reconstruction_from_file_prefix(self, rng, tmp_path):
        shape = (65, 65)
        data = smooth(shape)
        r = Refactorer(shape)
        cc = r.refactor(data)
        path = tmp_path / "d.rprc"
        write_refactored(path, cc)
        reader = RefactoredFileReader(path)
        from repro.core.classes import reconstruct_from_classes

        full = reconstruct_from_classes(reader.read_classes(), r.hier)
        np.testing.assert_allclose(full, data, atol=1e-9)

    def test_bad_magic(self, tmp_path):
        p = tmp_path / "x.rprc"
        p.write_bytes(b"NOTAFILE" * 4)
        with pytest.raises(ContainerError, match="magic"):
            RefactoredFileReader(p)

    def test_checksum_detects_corruption(self, rng, tmp_path):
        cc = self._cc(rng)
        path = tmp_path / "d.rprc"
        write_refactored(path, cc)
        raw = bytearray(path.read_bytes())
        raw[-5] ^= 0xFF  # flip a payload bit in the last class
        path.write_bytes(bytes(raw))
        reader = RefactoredFileReader(path)
        with pytest.raises(ContainerError, match="checksum"):
            reader.read_classes()
        # unverified read still possible (e.g. best-effort recovery)
        reader.read_classes(verify=False)

    def test_class_index_range(self, rng, tmp_path):
        cc = self._cc(rng)
        path = tmp_path / "d.rprc"
        write_refactored(path, cc)
        reader = RefactoredFileReader(path)
        with pytest.raises(ContainerError):
            reader.read_class(99)
        with pytest.raises(ContainerError):
            reader.read_classes(0)

    def test_hierarchy_shape_mismatch(self, rng, tmp_path):
        cc = self._cc(rng)
        path = tmp_path / "d.rprc"
        write_refactored(path, cc)
        from repro.core.grid import TensorHierarchy

        with pytest.raises(ContainerError):
            RefactoredFileReader(path).to_coefficient_classes(
                TensorHierarchy.from_shape((9, 9))
            )

    def test_header_is_json(self, rng, tmp_path):
        cc = self._cc(rng)
        path = tmp_path / "d.rprc"
        RefactoredFileWriter(path).write(cc)
        raw = path.read_bytes()
        hlen = int.from_bytes(raw[6:14], "little")
        header = json.loads(raw[14 : 14 + hlen])
        assert header["n_classes"] == cc.n_classes


class TestWorkflow:
    def test_model_monotone_bytes(self):
        pts = model_workflow(per_process_shape=(129, 129, 129), n_processes=64)
        sizes = [p.bytes_stored for p in pts]
        assert all(a < b for a, b in zip(sizes[:-1], sizes[1:]))
        assert sizes[-1] == 129**3 * 8 * 64

    def test_gpu_refactor_cheaper_than_cpu(self):
        gpu = model_workflow(use_gpu=True, ks=(3,))[0]
        cpu = model_workflow(use_gpu=False, ks=(3,))[0]
        assert gpu.refactor_seconds < cpu.refactor_seconds / 20
        assert gpu.io_seconds == cpu.io_seconds

    def test_refactoring_reduces_io_cost(self):
        """The paper's headline: storing 3/10 classes cuts total write cost
        (GPU refactor + write) well below writing the raw data."""
        pts = model_workflow(use_gpu=True, ks=(3, 10))
        raw_write = ALPINE_PFS.write_seconds(pts[-1].bytes_stored, 4096)
        assert pts[0].total_seconds < 0.5 * raw_write

    def test_model_validation(self):
        with pytest.raises(ValueError):
            model_workflow(operation="shred")
        with pytest.raises(ValueError):
            model_workflow(ks=(99,))

    def test_demo_2d(self, rng, tmp_path):
        data = smooth((65, 65))
        iso = float(np.median(data))
        res = run_workflow_demo(data, iso, workdir=tmp_path)
        assert res[-1].accuracy > 0.999
        assert all(a.bytes_read < b.bytes_read for a, b in zip(res[:-1], res[1:]))

    def test_demo_accuracy_reaches_high_before_full(self):
        data = smooth((65, 65, 65)[:2])  # 2D for speed
        iso = float(np.median(data))
        res = run_workflow_demo(data, iso)
        # a strict prefix should already be accurate for smooth data
        assert any(r.accuracy > 0.95 for r in res[:-2])

    def test_demo_rejects_1d(self, rng):
        with pytest.raises(ValueError):
            run_workflow_demo(rng.standard_normal(65), 0.0)
