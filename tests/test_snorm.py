"""Tests for multilevel s-norm truncation estimates."""

import numpy as np
import pytest

from repro.core.errors import l2
from repro.core.refactor import Refactorer
from repro.core.snorm import class_snorm, classes_for_tolerance, truncation_estimate
from repro.workloads.synthetic import multilinear, multiscale, smooth


def _domain_l2(err_field: np.ndarray, shape: tuple[int, ...]) -> float:
    """Discrete L2(domain) norm on the unit cube."""
    n = err_field.size
    return l2(err_field) / np.sqrt(n)


class TestClassSnorm:
    def test_zero_for_multilinear(self):
        cc = Refactorer((33, 33)).refactor(multilinear((33, 33)))
        for l in range(1, cc.n_classes):
            assert class_snorm(cc, l) < 1e-10

    def test_scales_linearly(self, rng):
        cc = Refactorer((33, 33)).refactor(rng.standard_normal((33, 33)))
        doubled = Refactorer((33, 33)).refactor(
            2.0 * cc.reconstruct()
        )
        for l in range(1, cc.n_classes):
            assert class_snorm(doubled, l) == pytest.approx(
                2.0 * class_snorm(cc, l), rel=1e-9
            )

    def test_positive_s_emphasizes_fine(self):
        cc = Refactorer((65, 65)).refactor(multiscale((65, 65)))
        L = cc.n_classes - 1
        s0_ratio = class_snorm(cc, L, 0.0) / class_snorm(cc, 1, 0.0)
        s1_ratio = class_snorm(cc, L, 1.0) / class_snorm(cc, 1, 1.0)
        assert s1_ratio > s0_ratio

    def test_level_range(self, rng):
        cc = Refactorer((9, 9)).refactor(rng.standard_normal((9, 9)))
        with pytest.raises(ValueError):
            class_snorm(cc, 0)
        with pytest.raises(ValueError):
            class_snorm(cc, cc.n_classes)


class TestTruncationEstimate:
    def test_monotone_decreasing(self):
        cc = Refactorer((65, 65)).refactor(smooth((65, 65)))
        ests = [truncation_estimate(cc, k) for k in range(1, cc.n_classes + 1)]
        assert all(a >= b for a, b in zip(ests[:-1], ests[1:]))
        assert ests[-1] == 0.0

    @pytest.mark.parametrize("field", [smooth, multiscale])
    def test_tracks_true_l2_error(self, field):
        shape = (65, 65)
        data = field(shape)
        cc = Refactorer(shape).refactor(data)
        for k in range(1, cc.n_classes):
            true = _domain_l2(cc.reconstruct(k) - data, shape)
            est = truncation_estimate(cc, k)
            if true < 1e-12:
                continue
            # multilevel norm equivalence: agree within a modest constant
            assert est / true > 0.1
            assert est / true < 10.0

    def test_k_validation(self, rng):
        cc = Refactorer((9, 9)).refactor(rng.standard_normal((9, 9)))
        with pytest.raises(ValueError):
            truncation_estimate(cc, 0)


class TestClassesForTolerance:
    def test_monotone_in_tolerance(self):
        cc = Refactorer((65, 65)).refactor(smooth((65, 65)))
        ks = [classes_for_tolerance(cc, tol) for tol in (1e-1, 1e-3, 1e-6, 0.0)]
        assert all(a <= b for a, b in zip(ks[:-1], ks[1:]))
        assert ks[-1] == cc.n_classes  # zero tolerance needs everything

    def test_huge_tolerance_needs_one_class(self):
        cc = Refactorer((33, 33)).refactor(smooth((33, 33)))
        assert classes_for_tolerance(cc, 1e6) == 1

    def test_selected_prefix_meets_estimate(self):
        cc = Refactorer((65, 65)).refactor(multiscale((65, 65)))
        tol = 1e-2
        k = classes_for_tolerance(cc, tol)
        assert truncation_estimate(cc, k) <= tol

    def test_negative_tolerance_rejected(self, rng):
        cc = Refactorer((9, 9)).refactor(rng.standard_normal((9, 9)))
        with pytest.raises(ValueError):
            classes_for_tolerance(cc, -1.0)
