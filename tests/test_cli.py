"""Tests for the repro-bench CLI."""

import pytest

from repro.cli import EXPERIMENTS, main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in ("fig7", "table5", "fig9", "ablations"):
        assert name in out


def test_default_is_list(capsys):
    assert main([]) == 0
    assert "fig7" in capsys.readouterr().out


def test_unknown_experiment(capsys):
    assert main(["fig99"]) == 2
    assert "unknown" in capsys.readouterr().err


@pytest.mark.parametrize("name", ["fig7", "table4", "table6", "fig8", "fig9"])
def test_individual_experiments_run(name, capsys, monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_SCALE", "ci")
    assert main([name]) == 0
    assert capsys.readouterr().out.strip()


def test_experiment_registry_complete():
    assert set(EXPERIMENTS) == {
        "fig7", "table2", "table3", "table4", "table5", "table6",
        "fig8", "fig9", "fig10", "fig11", "offload", "validate", "lifecycle",
        "ablations", "entropy", "parallel", "pipeline", "shards", "chaos",
        "service",
    }
