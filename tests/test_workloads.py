"""Tests for the workload generators."""

import numpy as np
import pytest

from repro.workloads.grayscott import GrayScottParams, PRESETS, paper_grid, simulate
from repro.workloads.synthetic import (
    anisotropic,
    discontinuous,
    mesh,
    multilinear,
    multiscale,
    smooth,
    white_noise,
)


class TestGrayScott:
    def test_shapes_and_finiteness(self):
        v = simulate((33, 33), steps=50)
        assert v.shape == (33, 33)
        assert np.isfinite(v).all()

    def test_3d_auto_stabilizes(self):
        v = simulate((17, 17, 17), steps=30)
        assert np.isfinite(v).all()

    def test_values_stay_physical(self):
        u = simulate((65, 65), steps=300, species="u")
        assert u.min() > -0.1 and u.max() < 1.5

    def test_deterministic_given_seed(self):
        a = simulate((33, 33), steps=40, seed=5)
        b = simulate((33, 33), steps=40, seed=5)
        np.testing.assert_array_equal(a, b)
        c = simulate((33, 33), steps=40, seed=6)
        assert not np.array_equal(a, c)

    def test_presets_differ(self):
        a = simulate((33, 33), steps=200, params="spots")
        b = simulate((33, 33), steps=200, params="waves")
        assert not np.allclose(a, b)

    def test_unknown_preset(self):
        with pytest.raises(ValueError, match="unknown preset"):
            simulate((33, 33), params="plaid")

    def test_dim_validation(self):
        with pytest.raises(ValueError):
            simulate((33,))

    def test_species_validation(self):
        with pytest.raises(ValueError):
            simulate((33, 33), species="w")

    def test_snapshots(self):
        snaps = simulate((17, 17), steps=30, snapshot_every=10)
        assert isinstance(snaps, list) and len(snaps) == 3
        assert all(s.shape == (17, 17) for s in snaps)

    def test_pattern_develops_structure(self):
        v = simulate((65, 65), steps=1500, params="stripes")
        # a formed pattern has substantial spatial variance
        assert v.std() > 0.01

    def test_paper_grid(self):
        assert paper_grid(9) == (513, 513, 513)
        assert paper_grid(13, ndim=2) == (8193, 8193)

    def test_stability_predicate(self):
        assert GrayScottParams(Du=0.2, Dv=0.1, dt=1.0).stable(2)
        assert not GrayScottParams(Du=0.2, Dv=0.1, dt=1.0).stable(3)

    def test_all_presets_listed(self):
        assert set(PRESETS) == {"spots", "stripes", "waves", "maze"}


class TestSynthetic:
    def test_mesh_shapes(self):
        grids = mesh((5, 7))
        assert len(grids) == 2 and grids[0].shape == (5, 7)

    def test_multilinear_refactors_to_zero_details(self):
        from repro.core.refactor import Refactorer

        for shape in [(17,), (9, 9), (5, 9, 5)]:
            cc = Refactorer(shape).refactor(multilinear(shape))
            for cls in cc.classes[1:]:
                assert np.abs(cls).max() < 1e-10

    def test_smooth_decays_noise_does_not(self):
        from repro.core.errors import class_decay
        from repro.core.refactor import Refactorer

        shape = (129, 129)
        r = Refactorer(shape)
        d_smooth = class_decay(r.refactor(smooth(shape))).max_abs
        d_noise = class_decay(r.refactor(white_noise(shape))).max_abs
        # smooth: finest class much smaller than the largest detail class
        assert d_smooth[-1] < 0.15 * max(d_smooth[1:])
        # noise: no decay (within 3x)
        assert d_noise[-1] > max(d_noise[1:]) / 3

    def test_discontinuous_concentrates_fine_energy(self):
        from repro.core.refactor import Refactorer

        shape = (129, 129)
        cc = Refactorer(shape).refactor(discontinuous(shape))
        # the jump keeps the finest class magnitude comparable to coarse ones
        from repro.core.errors import class_decay

        mags = class_decay(cc).max_abs
        assert mags[-1] > 0.2 * max(mags[1:])

    def test_generators_deterministic(self):
        np.testing.assert_array_equal(smooth((17, 17)), smooth((17, 17)))
        np.testing.assert_array_equal(multiscale((17, 17)), multiscale((17, 17)))

    def test_anisotropic_has_axis_asymmetry(self):
        a = anisotropic((65, 65))
        # variation along the last axis should dominate
        d_first = np.abs(np.diff(a, axis=0)).mean()
        d_last = np.abs(np.diff(a, axis=1)).mean()
        assert d_last > 2 * d_first
