"""Tests for the cluster substrate: SimComm, node models, weak scaling."""

import numpy as np
import pytest

from repro.cluster.node import DESKTOP, SUMMIT_NODE, node_speedup, partition_shape
from repro.cluster.scaling import (
    shape_for_bytes_2d,
    shape_for_bytes_3d,
    weak_scaling,
)
from repro.cluster.simmpi import SimComm, SpmdError, run_spmd


class TestSimComm:
    def test_point_to_point(self):
        def worker(comm):
            if comm.rank == 0:
                comm.send({"x": 1}, dest=1)
                return comm.recv(source=1)
            msg = comm.recv(source=0)
            comm.send(msg["x"] + 1, dest=0)
            return None

        results = run_spmd(worker, 2)
        assert results[0] == 2

    def test_arrays_shipped_by_copy(self):
        def worker(comm):
            if comm.rank == 0:
                a = np.ones(4)
                comm.send(a, dest=1)
                a[:] = -1  # must not affect what rank 1 sees
                comm.barrier()
                return None
            got = comm.recv(source=0)
            comm.barrier()
            return got.sum()

        assert run_spmd(worker, 2)[1] == 4.0

    def test_bcast(self):
        def worker(comm):
            val = comm.bcast("payload" if comm.rank == 0 else None)
            return val

        assert run_spmd(worker, 4) == ["payload"] * 4

    def test_scatter_gather(self):
        def worker(comm):
            chunks = [i * 10 for i in range(comm.size)] if comm.rank == 0 else None
            mine = comm.scatter(chunks)
            return comm.gather(mine)

        res = run_spmd(worker, 3)
        assert res[0] == [0, 10, 20]
        assert res[1] is None and res[2] is None

    def test_allreduce_custom_op(self):
        def worker(comm):
            return comm.allreduce(comm.rank + 1, op=lambda a, b: a * b)

        assert run_spmd(worker, 4) == [24] * 4

    def test_allgather(self):
        def worker(comm):
            return comm.allgather(comm.rank**2)

        assert run_spmd(worker, 4) == [[0, 1, 4, 9]] * 4

    def test_barrier_synchronizes(self):
        order = []

        def worker(comm):
            if comm.rank == 0:
                order.append("pre")
            comm.barrier()
            if comm.rank == 1:
                order.append("post")
            comm.barrier()
            return None

        run_spmd(worker, 2)
        assert order == ["pre", "post"]

    def test_rank_validation(self):
        def worker(comm):
            with pytest.raises(ValueError):
                comm.send(1, dest=99)
            return True

        assert all(run_spmd(worker, 2))

    def test_scatter_requires_exact_chunks(self):
        def worker(comm):
            if comm.rank == 0:
                comm.scatter([1])  # wrong length -> raises on root
            else:
                comm.recv(source=0, tag=-2, timeout=0.5)
            return None

        with pytest.raises(SpmdError):
            run_spmd(worker, 2)

    def test_spmd_error_reports_failing_ranks(self):
        def worker(comm):
            if comm.rank == 1:
                raise RuntimeError("boom")
            return "ok"

        with pytest.raises(SpmdError) as e:
            run_spmd(worker, 3)
        assert 1 in e.value.failures

    def test_needs_at_least_one_rank(self):
        with pytest.raises(ValueError):
            run_spmd(lambda c: None, 0)

    def test_distributed_refactoring_partitions(self, rng):
        """Each rank refactors its slab independently; the gathered
        round trip equals the full data (the paper's parallelization)."""
        from repro.core.refactor import Refactorer

        data = rng.standard_normal((32, 17))

        def worker(comm):
            chunks = None
            if comm.rank == 0:
                chunks = [data[i * 8 : (i + 1) * 8] for i in range(comm.size)]
            mine = comm.scatter(chunks)
            r = Refactorer(mine.shape)
            rt = r.recompose(r.decompose(mine))
            gathered = comm.gather(rt)
            if comm.rank == 0:
                return np.concatenate(gathered, axis=0)
            return None

        out = run_spmd(worker, 4)[0]
        np.testing.assert_allclose(out, data, atol=1e-9)


class TestNodeModels:
    def test_partition_shape_ceil(self):
        assert partition_shape((100, 7), 6) == (17, 7)
        assert partition_shape((4, 4), 8) == (1, 4)
        with pytest.raises(ValueError):
            partition_shape((4,), 0)

    def test_node_speedup_summit_beats_desktop(self):
        s = node_speedup(SUMMIT_NODE, (8194, 8193))["speedup"]
        d = node_speedup(DESKTOP, (8194, 8193))["speedup"]
        assert s > d > 1

    def test_node_speedup_2d_beats_3d(self):
        two = node_speedup(SUMMIT_NODE, (8190, 8193))["speedup"]
        three = node_speedup(SUMMIT_NODE, (516, 513, 513))["speedup"]
        assert two > three


class TestWeakScaling:
    def test_shapes_for_bytes(self):
        s2 = shape_for_bytes_2d(10**9)
        assert abs(s2[0] * s2[1] * 8 - 10**9) / 10**9 < 0.01
        s3 = shape_for_bytes_3d(10**9)
        assert abs(s3[0] ** 3 * 8 - 10**9) / 10**9 < 0.02

    def test_near_linear_scaling(self):
        pts = weak_scaling((1025, 1025), gpu_counts=(1, 16, 256, 4096))
        per_gpu = [p.aggregate_tbps / p.n_gpus for p in pts]
        assert per_gpu[-1] > 0.9 * per_gpu[0]
        assert all(p.efficiency > 0.9 for p in pts)

    def test_deterministic(self):
        a = weak_scaling((513, 513), gpu_counts=(64,))[0]
        b = weak_scaling((513, 513), gpu_counts=(64,))[0]
        assert a.aggregate_tbps == b.aggregate_tbps

    def test_straggler_grows_with_ranks(self):
        pts = weak_scaling((513, 513), gpu_counts=(1, 4096))
        assert pts[1].slowest_seconds >= pts[0].slowest_seconds

    def test_paper_magnitude_at_4096(self):
        shape = shape_for_bytes_2d(10**9)
        p = weak_scaling(shape, gpu_counts=(4096,))[0]
        # paper: 45.42 TB/s for 2D decomposition
        assert 30 < p.aggregate_tbps < 70

    def test_rejects_bad_counts(self):
        with pytest.raises(ValueError):
            weak_scaling((513, 513), gpu_counts=(0,))
