"""Tests for the tiled grid-processing framework (Fig. 4 / Algorithm 1)."""

import numpy as np
import pytest

from repro.core.coefficients import compute_coefficients, restore_from_coefficients
from repro.core.decompose import restrict_all
from repro.core.grid import TensorHierarchy
from repro.kernels.grid_processing import (
    GridProcessingKernel,
    interpolation_thread_assignment,
)


class TestThreadAssignment:
    @pytest.mark.parametrize("ndim,expected", [(1, 1), (2, 3), (3, 7)])
    def test_type_count(self, ndim, expected):
        a = interpolation_thread_assignment(3, ndim)
        assert a.n_types == expected

    def test_warps_per_type(self):
        a = interpolation_thread_assignment(3, 3)  # (2^3-1)^3 = 343 ops
        assert a.warps_per_type == -(-343 // 32)  # ceil

    def test_full_coverage_no_duplicates(self):
        a = interpolation_thread_assignment(2, 3, warp_size=32)
        side = (1 << a.b) - 1
        seen = set()
        for warp in range(a.warps_per_type):
            for lane in range(a.warp_size):
                c = a.work_coords(warp, lane)
                if c is not None:
                    assert c not in seen
                    seen.add(c)
        assert len(seen) == side**3

    def test_divergence_free_partition(self):
        # every warp serves exactly one interpolation type
        a = interpolation_thread_assignment(3, 3)
        for warp in range(a.total_warps):
            t = a.warp_type(warp)
            assert 0 <= t < a.n_types

    def test_idle_lanes_uniform_within_trailing_warp(self):
        # lanes past the work lattice are contiguous at the tail, so the
        # idle branch is warp-uniform beyond the single boundary warp
        a = interpolation_thread_assignment(2, 2)  # 9 ops, 1 warp per type
        idle = [a.work_coords(0, lane) is None for lane in range(a.warp_size)]
        first_idle = idle.index(True)
        assert all(idle[first_idle:])

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            interpolation_thread_assignment(0, 3)
        with pytest.raises(ValueError):
            interpolation_thread_assignment(2, 4)


@pytest.mark.parametrize(
    "shape", [(17,), (17, 17), (9, 17), (9, 9, 9), (33, 17), (16, 7), (12, 5, 6)],
    ids=lambda s: "x".join(map(str, s)),
)
@pytest.mark.parametrize("b", [1, 2, 3])
class TestTiledEqualsVectorized:
    def test_compute(self, shape, b, rng):
        h = TensorHierarchy.from_shape(shape)
        for l in range(1, h.L + 1):
            k = GridProcessingKernel(h, l, b=b)
            v = rng.standard_normal(h.level_shape(l))
            out = k.compute(v)
            np.testing.assert_array_equal(out, compute_coefficients(v, h, l))

    def test_restore(self, shape, b, rng):
        h = TensorHierarchy.from_shape(shape)
        for l in range(1, h.L + 1):
            k = GridProcessingKernel(h, l, b=b)
            v = rng.standard_normal(h.level_shape(l))
            c = compute_coefficients(v, h, l)
            vc = restrict_all(v, h, l)
            ref = restore_from_coefficients(c.copy(), vc, h, l)
            np.testing.assert_array_equal(k.restore(c, vc), ref)


class TestKernelValidation:
    def test_wrong_level(self):
        h = TensorHierarchy.from_shape((17,))
        with pytest.raises(ValueError):
            GridProcessingKernel(h, 0)
        with pytest.raises(ValueError):
            GridProcessingKernel(h, h.L + 1)

    def test_wrong_shape(self, rng):
        h = TensorHierarchy.from_shape((17,))
        k = GridProcessingKernel(h, h.L)
        with pytest.raises(ValueError):
            k.compute(rng.standard_normal(9))

    def test_nonuniform_coords(self, rng):
        from conftest import nonuniform_coords

        shape = (17, 9)
        h = TensorHierarchy.from_shape(shape, nonuniform_coords(shape, rng))
        k = GridProcessingKernel(h, h.L, b=2)
        v = rng.standard_normal(shape)
        np.testing.assert_array_equal(k.compute(v), compute_coefficients(v, h, h.L))

    def test_validate_helper(self):
        h = TensorHierarchy.from_shape((17, 17))
        GridProcessingKernel(h, h.L, b=2).validate()

    def test_tile_count_scales_with_b(self):
        h = TensorHierarchy.from_shape((33, 33))
        small = len(GridProcessingKernel(h, h.L, b=1).tile_origins())
        large = len(GridProcessingKernel(h, h.L, b=3).tile_origins())
        assert small > large
