"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic per-test random generator."""
    return np.random.default_rng(0xC0FFEE)


#: Shapes covering 1D/2D/3D, dyadic and non-dyadic, degenerate dims.
ROUNDTRIP_SHAPES = [
    (3,),
    (17,),
    (100,),
    (2, 2),
    (5, 5),
    (33, 17),
    (16, 7),
    (1, 33),
    (9, 9, 9),
    (12, 5, 6),
    (33, 5, 2),
]


@pytest.fixture(params=ROUNDTRIP_SHAPES, ids=lambda s: "x".join(map(str, s)))
def any_shape(request) -> tuple[int, ...]:
    return request.param


def nonuniform_coords(shape: tuple[int, ...], rng: np.random.Generator):
    """Random strictly-increasing coordinates per dimension."""
    coords = []
    for n in shape:
        if n == 1:
            coords.append(np.zeros(1))
            continue
        steps = rng.uniform(0.2, 1.8, size=n - 1)
        x = np.concatenate([[0.0], np.cumsum(steps)])
        coords.append(x / x[-1])
    return tuple(coords)
