"""Tests for the decomposition/recomposition drivers (Algorithm 3)."""

import numpy as np
import pytest

from repro.core.decompose import decompose, recompose
from repro.core.grid import TensorHierarchy

from conftest import nonuniform_coords


class TestRoundTrip:
    def test_lossless_uniform(self, rng, any_shape):
        h = TensorHierarchy.from_shape(any_shape)
        data = rng.standard_normal(any_shape)
        rt = recompose(decompose(data, h), h)
        np.testing.assert_allclose(rt, data, atol=1e-9)

    def test_lossless_nonuniform(self, rng, any_shape):
        coords = nonuniform_coords(any_shape, rng)
        h = TensorHierarchy.from_shape(any_shape, coords)
        data = rng.standard_normal(any_shape)
        rt = recompose(decompose(data, h), h)
        np.testing.assert_allclose(rt, data, atol=1e-9)

    def test_lossless_large_magnitudes(self, rng):
        h = TensorHierarchy.from_shape((33, 33))
        data = rng.standard_normal((33, 33)) * 1e12
        rt = recompose(decompose(data, h), h)
        np.testing.assert_allclose(rt, data, rtol=1e-12)

    def test_float32_supported(self, rng):
        h = TensorHierarchy.from_shape((33, 33))
        data = rng.standard_normal((33, 33)).astype(np.float32)
        rt = recompose(decompose(data, h), h)
        np.testing.assert_allclose(rt, data.astype(np.float64), atol=1e-3)

    def test_hierarchy_inferred_when_omitted(self, rng):
        data = rng.standard_normal((17, 17))
        np.testing.assert_allclose(recompose(decompose(data)), data, atol=1e-10)


class TestSemantics:
    def test_input_not_mutated(self, rng):
        h = TensorHierarchy.from_shape((17, 17))
        data = rng.standard_normal((17, 17))
        before = data.copy()
        decompose(data, h)
        np.testing.assert_array_equal(data, before)
        ref = decompose(data, h)
        before = ref.copy()
        recompose(ref, h)
        np.testing.assert_array_equal(ref, before)

    def test_trivial_grid_is_identity(self, rng):
        for shape in [(1,), (2,), (2, 2), (1, 2)]:
            h = TensorHierarchy.from_shape(shape)
            data = rng.standard_normal(shape)
            out = decompose(data, h)
            np.testing.assert_array_equal(out, data)
            np.testing.assert_array_equal(recompose(out, h), data)

    def test_inplace_layout_coarsest_values(self, rng):
        # positions of the coarsest node set hold corrected nodal values:
        # recomposing only class 0 must reproduce them by interpolation
        h = TensorHierarchy.from_shape((9,))
        data = rng.standard_normal(9)
        ref = decompose(data, h)
        idx0 = h.level_indices(0)[0]
        assert set(idx0.tolist()) == {0, 8}
        # detail positions hold the detail coefficients of their level:
        from repro.core.coefficients import compute_coefficients

        c_top = compute_coefficients(data, h, h.L)
        np.testing.assert_allclose(ref[1::2], c_top[1::2])

    def test_shape_mismatch_raises(self, rng):
        h = TensorHierarchy.from_shape((9, 9))
        with pytest.raises(ValueError):
            decompose(rng.standard_normal((9, 8)), h)

    def test_decompose_concentrates_energy(self, rng):
        # for smooth data most refactored values are (near) zero while
        # the original had full energy everywhere
        x = np.linspace(0, 1, 65)
        data = np.sin(2 * np.pi * np.add.outer(x, x))
        h = TensorHierarchy.from_shape((65, 65))
        ref = decompose(data, h)
        small = np.abs(ref) < 1e-2 * np.abs(ref).max()
        assert small.mean() > 0.5

    def test_engine_parity_gpu_vs_numpy(self, rng):
        from repro.kernels.metered import CpuRefEngine, GpuSimEngine

        h = TensorHierarchy.from_shape((17, 9))
        data = rng.standard_normal((17, 9))
        base = decompose(data, h)
        for engine in (GpuSimEngine(), CpuRefEngine()):
            np.testing.assert_array_equal(decompose(data, h, engine), base)
            np.testing.assert_array_equal(recompose(base, h, engine), recompose(base, h))
