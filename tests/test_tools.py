"""Tests for repro-tool, the compressed-file format, and paper validation."""

import numpy as np
import pytest

from repro.compress.fileio import CompressedFileError, load_compressed, save_compressed
from repro.compress.mgard import MgardCompressor
from repro.core.grid import TensorHierarchy
from repro.experiments.paper_values import format_validation, validation_report
from repro.tools import main as tool_main
from repro.workloads.synthetic import smooth


@pytest.fixture
def npy_field(tmp_path):
    data = smooth((65, 65))
    path = tmp_path / "field.npy"
    np.save(path, data)
    return path, data


class TestFileFormat:
    def test_roundtrip(self, tmp_path):
        data = smooth((33, 33))
        hier = TensorHierarchy.from_shape((33, 33))
        comp = MgardCompressor(hier, 1e-3)
        blob = comp.compress(data)
        path = tmp_path / "x.mgz"
        nbytes = save_compressed(path, blob)
        assert nbytes == path.stat().st_size
        loaded, hier2 = load_compressed(path)
        back = MgardCompressor(hier2, loaded.tol, mode=loaded.mode).decompress(loaded)
        assert np.abs(back - data).max() <= 1e-3

    def test_nonuniform_coords_embedded(self, tmp_path, rng):
        from conftest import nonuniform_coords

        shape = (33, 33)
        coords = nonuniform_coords(shape, rng)
        hier = TensorHierarchy.from_shape(shape, coords)
        data = smooth(shape)
        blob = MgardCompressor(hier, 1e-3).compress(data)
        path = tmp_path / "x.mgz"
        save_compressed(path, blob, coords=coords)
        loaded, hier2 = load_compressed(path)
        np.testing.assert_allclose(hier2.dims[0].coords, coords[0])
        back = MgardCompressor(hier2, loaded.tol).decompress(loaded)
        assert np.abs(back - data).max() <= 1e-3

    def test_bad_magic(self, tmp_path):
        p = tmp_path / "bad.mgz"
        p.write_bytes(b"GARBAGE!" * 4)
        with pytest.raises(CompressedFileError):
            load_compressed(p)

    def test_corruption_detected(self, tmp_path):
        data = smooth((33, 33))
        hier = TensorHierarchy.from_shape((33, 33))
        blob = MgardCompressor(hier, 1e-3).compress(data)
        p = tmp_path / "x.mgz"
        save_compressed(p, blob)
        raw = bytearray(p.read_bytes())
        raw[-3] ^= 0x55
        p.write_bytes(bytes(raw))
        with pytest.raises(CompressedFileError, match="checksum"):
            load_compressed(p)


class TestReproTool:
    def test_refactor_reconstruct_roundtrip(self, npy_field, tmp_path, capsys):
        path, data = npy_field
        rprc = tmp_path / "f.rprc"
        out = tmp_path / "out.npy"
        assert tool_main(["refactor", str(path), str(rprc)]) == 0
        assert tool_main(["reconstruct", str(rprc), str(out)]) == 0
        np.testing.assert_allclose(np.load(out), data, atol=1e-9)

    def test_reconstruct_prefix(self, npy_field, tmp_path):
        path, data = npy_field
        rprc = tmp_path / "f.rprc"
        out = tmp_path / "out.npy"
        tool_main(["refactor", str(path), str(rprc)])
        assert tool_main(["reconstruct", str(rprc), str(out), "-k", "2"]) == 0
        coarse = np.load(out)
        assert coarse.shape == data.shape
        assert np.abs(coarse - data).max() > 1e-6  # genuinely approximate

    def test_reconstruct_tolerance_hint(self, npy_field, tmp_path, capsys):
        path, data = npy_field
        rprc = tmp_path / "f.rprc"
        out = tmp_path / "out.npy"
        tool_main(["refactor", str(path), str(rprc)])
        assert tool_main(["reconstruct", str(rprc), str(out), "--tol", "1e-2"]) == 0
        msg = capsys.readouterr().out
        assert "classes" in msg

    def test_compress_decompress(self, npy_field, tmp_path):
        path, data = npy_field
        mgz = tmp_path / "f.mgz"
        out = tmp_path / "out.npy"
        assert tool_main(
            ["compress", str(path), str(mgz), "--rel-tol", "1e-3", "--verify"]
        ) == 0
        assert tool_main(["decompress", str(mgz), str(out)]) == 0
        rng = data.max() - data.min()
        assert np.abs(np.load(out) - data).max() <= 1e-3 * rng

    def test_compress_requires_tolerance(self, npy_field, tmp_path):
        path, _ = npy_field
        with pytest.raises(SystemExit):
            tool_main(["compress", str(path), str(tmp_path / "x.mgz")])

    def test_info_both_formats(self, npy_field, tmp_path, capsys):
        path, _ = npy_field
        rprc = tmp_path / "f.rprc"
        mgz = tmp_path / "f.mgz"
        tool_main(["refactor", str(path), str(rprc)])
        tool_main(["compress", str(path), str(mgz), "--tol", "1e-3"])
        capsys.readouterr()
        assert tool_main(["info", str(rprc)]) == 0
        assert "classes" in capsys.readouterr().out
        assert tool_main(["info", str(mgz)]) == 0
        assert "ratio" in capsys.readouterr().out

    def test_info_rejects_unknown(self, tmp_path):
        p = tmp_path / "junk.bin"
        p.write_bytes(b"\x00" * 32)
        with pytest.raises(SystemExit):
            tool_main(["info", str(p)])


class TestPaperValidation:
    @pytest.fixture(scope="class")
    def claims(self):
        return validation_report()

    def test_every_claim_in_band(self, claims):
        failures = [c for c in claims if not c.ok]
        assert not failures, format_validation(failures)

    def test_calibration_anchors_tight(self, claims):
        anchors = [c for c in claims if c.id.startswith("t4-")]
        assert len(anchors) == 4
        for c in anchors:
            assert 0.9 < c.ratio < 1.1

    def test_memory_claims_exact(self, claims):
        for c in claims:
            if c.id.startswith("mem-"):
                assert abs(c.ratio - 1.0) < 0.03

    def test_report_formats(self, claims):
        text = format_validation(claims)
        assert "Validation" in text and "ok" in text
