"""Tests for the region-pipelined linear-processing framework (Fig. 5/6)."""

import numpy as np
import pytest

from repro.core.grid import TensorHierarchy
from repro.core.mass import mass_apply
from repro.core.solver import solve_correction, thomas_solve
from repro.core.transfer import transfer_apply
from repro.kernels.linear_processing import LinearProcessingKernel

from conftest import nonuniform_coords


def _ops(n, rng=None):
    coords = nonuniform_coords((n,), rng) if rng is not None else None
    h = TensorHierarchy.from_shape((n,), coords)
    return h.level_ops(h.L, 0)


@pytest.mark.parametrize("n", [5, 9, 17, 33, 16, 7, 100])
@pytest.mark.parametrize("segment", [2, 3, 8, 64])
class TestSegmentedEqualsVectorized:
    def test_mass(self, n, segment, rng):
        ops = _ops(n, rng)
        k = LinearProcessingKernel(ops, segment=segment)
        v = rng.standard_normal((4, n))
        np.testing.assert_array_equal(k.mass_multiply(v), mass_apply(v, ops.h_fine))

    def test_transfer(self, n, segment, rng):
        ops = _ops(n, rng)
        k = LinearProcessingKernel(ops, segment=segment)
        f = rng.standard_normal((4, n))
        np.testing.assert_array_equal(k.transfer_multiply(f), transfer_apply(f, ops))

    def test_solve(self, n, segment, rng):
        ops = _ops(n, rng)
        k = LinearProcessingKernel(ops, segment=segment)
        g = rng.standard_normal((4, ops.m_coarse))
        np.testing.assert_array_equal(k.solve(g), thomas_solve(g, ops))
        np.testing.assert_allclose(k.solve(g), solve_correction(g, ops), atol=1e-9)


class TestSegmentIndependence:
    def test_results_independent_of_segment_length(self, rng):
        ops = _ops(33)
        v = rng.standard_normal((2, 33))
        outs = [
            LinearProcessingKernel(ops, segment=s).mass_multiply(v) for s in (2, 5, 33, 64)
        ]
        for o in outs[1:]:
            np.testing.assert_array_equal(o, outs[0])


@pytest.mark.parametrize("n", [5, 9, 17, 33, 16, 7, 100])
@pytest.mark.parametrize("segment", [2, 3, 8, 64])
class TestScalarReferencesMatchVectorized:
    """The retained per-element walks cross-check the fast paths."""

    def test_mass(self, n, segment, rng):
        ops = _ops(n, rng)
        k = LinearProcessingKernel(ops, segment=segment)
        v = rng.standard_normal((4, n))
        np.testing.assert_array_equal(k.mass_multiply(v), k.mass_multiply_scalar(v))

    def test_transfer(self, n, segment, rng):
        ops = _ops(n, rng)
        k = LinearProcessingKernel(ops, segment=segment)
        f = rng.standard_normal((4, n))
        np.testing.assert_array_equal(
            k.transfer_multiply(f), k.transfer_multiply_scalar(f)
        )

    def test_solve(self, n, segment, rng):
        ops = _ops(n, rng)
        k = LinearProcessingKernel(ops, segment=segment)
        g = rng.standard_normal((4, ops.m_coarse))
        np.testing.assert_array_equal(k.solve(g), k.solve_scalar(g))


class TestValidation:
    def test_segment_too_small(self):
        with pytest.raises(ValueError):
            LinearProcessingKernel(_ops(9), segment=1)

    def test_wrong_lengths(self, rng):
        k = LinearProcessingKernel(_ops(9))
        with pytest.raises(ValueError):
            k.mass_multiply(rng.standard_normal((2, 8)))
        with pytest.raises(ValueError):
            k.transfer_multiply(rng.standard_normal((2, 5)))
        with pytest.raises(ValueError):
            k.solve(rng.standard_normal((2, 9)))

    def test_ghost_regions_prevent_pollution(self, rng):
        # The segmented in-place walk must read *original* neighbours at
        # segment boundaries; feeding a pathological spike at a boundary
        # checks the ghost carry.
        ops = _ops(17)
        v = np.zeros((1, 17))
        v[0, 7] = 1e9  # boundary of segment length 8 minus 1
        v[0, 8] = -1e9
        for seg in (2, 4, 8):
            k = LinearProcessingKernel(ops, segment=seg)
            np.testing.assert_array_equal(
                k.mass_multiply(v), mass_apply(v, ops.h_fine)
            )

    def test_single_vector_1d_input(self, rng):
        ops = _ops(17)
        k = LinearProcessingKernel(ops, segment=4)
        v = rng.standard_normal(17)
        np.testing.assert_array_equal(k.mass_multiply(v), mass_apply(v, ops.h_fine))
