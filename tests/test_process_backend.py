"""Process-parallel codec substrate + measured workflow pipeline.

Contracts:

* all three executor backends (serial / thread / process) produce
  byte-identical containers, on adversarial class mixes and across
  code-book-reusing stream chains;
* the zlib backend's sub-block segmentation round-trips, parallelizes
  through every backend, and keeps decoding legacy single-unit blobs;
* the process backend degrades safely (closures run inline, broken
  shared memory falls back) and actually engages its shared-memory
  fan-outs where designed;
* :meth:`StepStreamReader.refresh` tolerates torn manifest reads from
  a live producer;
* the Fig. 10 workflow showcase executes refactor→encode→write over a
  live stream writer with measured overlap compared to the model.
"""

import json

import numpy as np
import pytest

import repro.compress.huffman as H
import repro.compress.lossless as L
from repro.cluster.pipeline import run_pipeline
from repro.compress.executor import ParallelExecutor  # legacy import path
from repro.compress.lossless import decode_classes, encode_classes
from repro.compress.mgard import MgardCompressor
from repro.io.stream import PreparedStep, StepStreamReader, StepStreamWriter, StreamError
from repro.io.workflow import run_streaming_pipeline
from repro.parallel import (
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    get_executor,
    share_array,
    share_bytes,
)

pytestmark = pytest.mark.filterwarnings("error::UserWarning")


def _executors():
    return {
        "serial": None,
        "thread": get_executor("thread:3"),
        "process": get_executor("process:2"),
    }


class TestExecutorSpecs:
    def test_kinds_and_aliases(self):
        assert isinstance(get_executor("serial"), SerialExecutor)
        th = get_executor("thread:5")
        assert isinstance(th, ThreadExecutor) and th.max_workers == 5
        assert get_executor("parallel:5") is th  # pre-refactor alias
        assert ParallelExecutor is ThreadExecutor
        pr = get_executor("process:2")
        assert isinstance(pr, ProcessExecutor) and pr.max_workers == 2
        assert get_executor("process:2") is pr  # shared instance
        for bad in ("bogus", "process:0", "thread:x"):
            with pytest.raises(ValueError):
                get_executor(bad)

    def test_process_map_runs_closures_inline(self):
        state = []
        out = get_executor("process:2").map(lambda x: (state.append(x), x * 2)[1], range(5))
        assert out == [0, 2, 4, 6, 8]
        assert state == list(range(5))  # ran in this process

    def test_process_map_picklable_fn_through_pool(self):
        import os

        pids = get_executor("process:2").map(_worker_pid, range(4))
        assert all(isinstance(p, int) for p in pids)
        assert any(p != os.getpid() for p in pids)


def _worker_pid(_):
    import os

    return os.getpid()


class TestSharedMemoryTransport:
    def test_array_roundtrip(self):
        arr = np.arange(1000, dtype=np.uint64)
        ref, block = share_array(arr)
        try:
            lease = ref.open()
            try:
                np.testing.assert_array_equal(np.asarray(lease.view), arr)
                with pytest.raises((ValueError, AttributeError)):
                    lease.view[0] = 1  # read-only
            finally:
                lease.close()
        finally:
            block.destroy()

    def test_bytes_roundtrip(self):
        payload = bytes(range(256)) * 7
        ref, block = share_bytes(payload)
        try:
            lease = ref.open()
            try:
                assert bytes(lease.view) == payload
            finally:
                lease.close()
        finally:
            block.destroy()


def _adversarial_mixes(rng):
    """(name, bins, sizes) cases spanning both backends' corner cases."""
    big_huff = 2 * H._BLOCK_SYMBOLS + 321
    big_zlib = (2 * L._ZLIB_BLOCK_BYTES) // 8 + 13  # int64 raw >= 2 blocks
    yield "empty", np.zeros(0, dtype=np.int64), [0, 0]
    yield "tiny", np.array([5, -5, 0], dtype=np.int64), [1, 0, 2]
    skew = (rng.geometric(0.3, big_huff).astype(np.int64) - 1) * rng.choice(
        [-1, 1], big_huff
    )
    yield "dominant-huffman-class", np.concatenate(
        [rng.integers(-4, 5, 120).astype(np.int64), skew]
    ), [120, big_huff]
    wide = rng.integers(-(2**40), 2**40, big_zlib).astype(np.int64)
    yield "dominant-zlib-subblock-class", np.concatenate(
        [rng.integers(-2, 3, 64).astype(np.int64), wide]
    ), [64, big_zlib]
    esc = rng.integers(-(2**60), 2**60, 4000).astype(np.int64)
    yield "escape-heavy", np.concatenate(
        [np.zeros(32, dtype=np.int64), esc]
    ), [32, 4000]


class TestThreeBackendBitIdentity:
    @pytest.mark.parametrize("backend", ["zlib", "huffman"])
    def test_adversarial_mixes(self, rng, backend):
        for name, bins, sizes in _adversarial_mixes(rng):
            blobs = {
                tag: encode_classes(bins, sizes, backend=backend, executor=ex)
                for tag, ex in _executors().items()
            }
            assert blobs["serial"] == blobs["thread"], (name, backend)
            assert blobs["serial"] == blobs["process"], (name, backend)
            payload, header = blobs["serial"]
            for tag, ex in _executors().items():
                flat, got = decode_classes(payload, header, executor=ex)
                assert got == [int(s) for s in sizes], (name, backend, tag)
                np.testing.assert_array_equal(flat, bins, err_msg=f"{name}/{tag}")

    def test_codebook_chains_are_backend_independent(self, rng):
        """Reusing streams emit identical ref/delta chains everywhere."""
        sizes = [60, 4000, 30000]
        steps = [
            np.concatenate(
                [rng.integers(-3 - t, 4 + t, s).astype(np.int64) for s in sizes]
            )
            for t in range(4)
        ]
        scratches = {tag: {} for tag in _executors()}
        decodes = {tag: {} for tag in _executors()}
        saw_ref = False
        for t, bins in enumerate(steps):
            blobs = {}
            for tag, ex in _executors().items():
                blobs[tag] = encode_classes(
                    bins, sizes, backend="huffman",
                    scratch=scratches[tag], refresh=(t == 0), executor=ex,
                )
            assert blobs["serial"] == blobs["thread"] == blobs["process"], t
            p, h = blobs["serial"]
            saw_ref = saw_ref or any("table_ref" in s for s in h["segments"])
            for tag, ex in _executors().items():
                flat, _ = decode_classes(p, h, executor=ex, scratch=decodes[tag])
                np.testing.assert_array_equal(flat, bins, err_msg=f"{t}/{tag}")
        assert saw_ref, "the chain never reused a book; test is vacuous"

    def test_compressor_containers_identical(self, rng):
        shape = (33, 33)
        data = rng.standard_normal(shape).cumsum(0).cumsum(1)
        blobs = {}
        for spec in ("serial", "thread:3", "process:2"):
            comp = MgardCompressor.for_shape(
                shape, 1e-3, backend="huffman", executor=spec
            )
            blobs[spec] = comp.compress(data)
            assert np.abs(comp.decompress(blobs[spec]) - data).max() <= 1e-3
        assert blobs["serial"].payloads == blobs["thread:3"].payloads
        assert blobs["serial"].payloads == blobs["process:2"].payloads
        assert blobs["serial"].headers == blobs["thread:3"].headers
        assert blobs["serial"].headers == blobs["process:2"].headers


class TestHuffmanProcessDecode:
    def test_shm_fanout_engages_and_is_exact(self, rng, monkeypatch):
        n = 2 * H._MIN_DECODE_BLOCKS_PER_WORKER * H._SYNC_BLOCK + 9876
        vals = (rng.geometric(0.4, n).astype(np.int64) - 1) * rng.choice([-1, 1], n)
        vals[:: n // 64] = rng.integers(-(2**60), 2**60, vals[:: n // 64].size)
        payload, header = H.huffman_encode(vals)
        calls = []
        orig = H._decode_sync_process

        def spy(*args, **kwargs):
            out = orig(*args, **kwargs)
            calls.append(out is not None)
            return out

        monkeypatch.setattr(H, "_decode_sync_process", spy)
        out = H.huffman_decode(payload, header, executor=get_executor("process:2"))
        np.testing.assert_array_equal(out, vals)
        assert calls == [True], "process shm decode path did not engage"

    def test_shm_unavailable_falls_back(self, rng, monkeypatch):
        import repro.parallel.shm as S

        n = 2 * H._MIN_DECODE_BLOCKS_PER_WORKER * H._SYNC_BLOCK + 5
        vals = rng.integers(-6, 7, n).astype(np.int64)
        payload, header = H.huffman_encode(vals)

        def refuse(size, name=None, track=True):
            raise S.ShmUnavailable("test")

        monkeypatch.setattr(S, "_create", refuse)
        out = H.huffman_decode(payload, header, executor=get_executor("process:2"))
        np.testing.assert_array_equal(out, vals)


class TestZlibSubBlocks:
    def test_blocks_appear_only_past_threshold(self, rng):
        small = rng.integers(-100, 100, 100).astype(np.int64)
        big_n = (2 * L._ZLIB_BLOCK_BYTES) // 2 + 5  # int16-narrowed raw
        big = rng.integers(-(2**12), 2**12, big_n).astype(np.int64)
        bins = np.concatenate([small, big])
        payload, header = encode_classes(bins, [small.size, big.size], backend="zlib")
        segs = header["segments"]
        assert "blocks" not in segs[0]
        assert sum(segs[1]["blocks"]) == segs[1]["nbytes"]
        flat, _ = decode_classes(payload, header)
        np.testing.assert_array_equal(flat, bins)

    def test_subblock_roundtrip_small_threshold(self, rng, monkeypatch):
        """Cheap coverage of many blocks via a shrunken block size."""
        monkeypatch.setattr(L, "_ZLIB_BLOCK_BYTES", 1 << 10)
        sizes = [700, 90, 0, 2500]
        bins = np.concatenate(
            [rng.integers(-(2**20), 2**20, s).astype(np.int64) for s in sizes]
        )
        blobs = {
            tag: encode_classes(bins, sizes, backend="zlib", executor=ex)
            for tag, ex in _executors().items()
        }
        assert blobs["serial"] == blobs["thread"] == blobs["process"]
        payload, header = blobs["serial"]
        assert sum("blocks" in s for s in header["segments"]) >= 2
        # headers survive JSON (what the on-disk container stores)
        header = json.loads(json.dumps(header))
        for tag, ex in _executors().items():
            flat, _ = decode_classes(payload, header, executor=ex)
            np.testing.assert_array_equal(flat, bins, err_msg=tag)

    def test_legacy_single_unit_zlib_segments_decode(self, rng, monkeypatch):
        """Blobs written before sub-block segmentation still decode."""
        sizes = [600, 3000]
        bins = rng.integers(-(2**20), 2**20, sum(sizes)).astype(np.int64)
        # a huge threshold reproduces the pre-refactor single-unit layout
        monkeypatch.setattr(L, "_ZLIB_BLOCK_BYTES", 1 << 40)
        payload, header = encode_classes(bins, sizes, backend="zlib")
        assert all("blocks" not in s for s in header["segments"])
        monkeypatch.undo()
        header = json.loads(json.dumps(header))
        for tag, ex in _executors().items():
            flat, got = decode_classes(payload, header, executor=ex)
            assert got == sizes
            np.testing.assert_array_equal(flat, bins, err_msg=tag)

    def test_corrupt_blocks_extent_raises(self, rng):
        n = (2 * L._ZLIB_BLOCK_BYTES) // 8 + 3
        bins = rng.integers(-(2**40), 2**40, n).astype(np.int64)
        payload, header = encode_classes(bins, [n], backend="zlib")
        bad = json.loads(json.dumps(header))
        bad["segments"][0]["blocks"][0] += 1
        with pytest.raises(ValueError, match="sub-blocks"):
            decode_classes(payload, bad)


class TestPipelineWithProcessBackend:
    def test_run_pipeline_accepts_process_executor(self):
        out = run_pipeline(
            [lambda x: x + 1, lambda x: x * 2],
            list(range(12)),
            executor=get_executor("process:2"),
        )
        assert out.results == [(i + 1) * 2 for i in range(12)]


class TestTornManifestRefresh:
    def _stream(self, rng, tmp_path, n=3):
        base = rng.standard_normal((17, 17)).cumsum(0).cumsum(1)
        frames = [base * (1 + 0.05 * t) for t in range(n)]
        writer = StepStreamWriter(tmp_path, base.shape)
        for t in range(2):
            writer.append(frames[t])
        return writer, frames

    def test_refresh_ignores_torn_manifest(self, rng, tmp_path):
        writer, frames = self._stream(rng, tmp_path)
        reader = StepStreamReader(tmp_path)
        assert reader.n_steps == 2
        manifest = tmp_path / "manifest.json"
        good = manifest.read_text()
        manifest.write_text(good[: len(good) // 2])  # torn mid-write
        assert reader.refresh() == 2  # keeps the last good snapshot
        manifest.write_text(good)
        writer.append(frames[2])
        assert reader.refresh() == 3  # next poll catches up

    def test_refresh_ignores_missing_manifest(self, rng, tmp_path):
        writer, _ = self._stream(rng, tmp_path)
        reader = StepStreamReader(tmp_path)
        manifest = tmp_path / "manifest.json"
        good = manifest.read_text()
        manifest.unlink()  # mid-replace on a non-atomic filesystem
        assert reader.refresh() == 2
        manifest.write_text(good)
        assert reader.refresh() == 2

    def test_persistently_dead_stream_raises_eventually(self, rng, tmp_path):
        """A manifest that never heals is a dead stream, not a race."""
        from repro.io.stream import _MAX_TORN_REFRESHES

        self._stream(rng, tmp_path)
        reader = StepStreamReader(tmp_path)
        (tmp_path / "manifest.json").unlink()
        for _ in range(_MAX_TORN_REFRESHES - 1):
            assert reader.refresh() == 2
        with pytest.raises(StreamError, match="consecutive"):
            reader.refresh()

    def test_refresh_still_rejects_shape_change(self, rng, tmp_path):
        writer, _ = self._stream(rng, tmp_path)
        reader = StepStreamReader(tmp_path)
        manifest = tmp_path / "manifest.json"
        doc = json.loads(manifest.read_text())
        doc["shape"] = [9, 9]
        manifest.write_text(json.dumps(doc))
        with pytest.raises(StreamError, match="shape"):
            reader.refresh()


class TestEncodeCommitSplit:
    def test_split_matches_append(self, rng, tmp_path):
        base = rng.standard_normal((17, 17)).cumsum(0).cumsum(1)
        frames = [base * (1 + 0.1 * t) for t in range(3)]
        w_a = StepStreamWriter(tmp_path / "a", base.shape)
        w_b = StepStreamWriter(tmp_path / "b", base.shape)
        for t, frame in enumerate(frames):
            w_a.append(frame, time=float(t))
            prep = w_b.encode_step(frame, time=float(t))
            assert isinstance(prep, PreparedStep)
            w_b.commit_step(prep)
        man_a = json.loads((tmp_path / "a" / "manifest.json").read_text())
        man_b = json.loads((tmp_path / "b" / "manifest.json").read_text())
        assert man_a == man_b
        for step in man_a["steps"]:
            fa = (tmp_path / "a" / step["file"]).read_bytes()
            fb = (tmp_path / "b" / step["file"]).read_bytes()
            assert fa == fb

    def test_split_matches_append_compressed(self, rng, tmp_path):
        base = rng.standard_normal((17, 17)).cumsum(0).cumsum(1)
        frames = [base * (1 + 0.02 * t) for t in range(4)]
        tol = 1e-3 * float(np.abs(base).max())
        w = StepStreamWriter(tmp_path, base.shape, tol=tol, key_interval=2)
        for t, frame in enumerate(frames):
            w.commit_step(w.encode_step(frame, time=float(t)))
        reader = StepStreamReader(tmp_path)
        for t, frame in enumerate(frames):
            assert np.abs(reader.read_step(t) - frame).max() <= tol

    def test_out_of_order_commit_raises(self, rng, tmp_path):
        base = rng.standard_normal((17, 17)).cumsum(0).cumsum(1)
        w = StepStreamWriter(tmp_path, base.shape)
        p0 = w.encode_step(base)
        p1 = w.encode_step(base * 2)
        with pytest.raises(StreamError, match="order"):
            w.commit_step(p1)
        w.commit_step(p0)
        w.commit_step(p1)
        assert w.n_steps == 2

    def test_encode_refactored_rejected_on_compressed_stream(self, rng, tmp_path):
        base = rng.standard_normal((17, 17)).cumsum(0).cumsum(1)
        w = StepStreamWriter(tmp_path, base.shape, tol=1e-3)
        with pytest.raises(StreamError, match="refactored"):
            w.encode_refactored(w.refactorer.refactor(base))

    def test_abandon_pending_unwedges_writer(self, rng, tmp_path):
        """An aborted pipeline leaves claimed-but-uncommitted indices;
        abandon_pending() lets plain appends resume."""
        base = rng.standard_normal((17, 17)).cumsum(0).cumsum(1)
        w = StepStreamWriter(tmp_path, base.shape)
        w.append(base)
        w.encode_step(base * 2)  # encoded, never committed (abort)
        w.encode_step(base * 3)
        with pytest.raises(StreamError, match="abandon_pending"):
            w.append(base * 4)
        assert w.abandon_pending() >= 2  # the two orphans + failed append
        w.append(base * 4)
        assert w.n_steps == 2
        reader = StepStreamReader(tmp_path)
        field, _ = reader.read(1, k=reader.hier.L + 1)
        np.testing.assert_allclose(field, base * 4, atol=1e-9)

    def test_abandon_pending_compressed_rebases_on_key_frame(self, rng, tmp_path):
        base = rng.standard_normal((17, 17)).cumsum(0).cumsum(1)
        tol = 1e-3 * float(np.abs(base).max())
        w = StepStreamWriter(tmp_path, base.shape, tol=tol, key_interval=4)
        frames = [base * (1 + 0.02 * t) for t in range(4)]
        w.append(frames[0])
        w.append(frames[1])
        w.encode_step(frames[2])  # abandoned: prediction loop advanced
        assert w.abandon_pending() == 1
        w.append(frames[2])  # re-encoded; lands as a key frame re-base
        w.append(frames[3])
        reader = StepStreamReader(tmp_path)
        for t, frame in enumerate(frames):
            assert np.abs(reader.read_step(t) - frame).max() <= tol, t


class TestMeasuredWorkflowPipeline:
    def test_measured_vs_modeled(self, rng, tmp_path):
        base = rng.standard_normal((17, 17)).cumsum(0).cumsum(1)
        frames = [base * (1 + 0.05 * t) for t in range(5)]
        m = run_streaming_pipeline(
            frames, workdir=tmp_path, executor="thread:3", keep_stream=True
        )
        assert m.n_steps == 5
        assert m.stage_names == ("refactor", "encode", "write")
        assert m.serial_wall > 0 and m.pipelined_wall > 0
        assert m.modeled_makespan <= m.modeled_sequential + 1e-12
        assert m.modeled_overlap_gain >= 1.0
        assert m.bytes_written > 0
        # the pipelined stream is a real, readable stream directory
        reader = StepStreamReader(tmp_path / "pipelined")
        assert reader.n_steps == 5
        field, _ = reader.read(4, k=reader.hier.L + 1)
        np.testing.assert_allclose(field, frames[4], atol=1e-9)
        # the serial calibration stream is scratch and must be gone
        assert not (tmp_path / "serial").exists()

    def test_validation(self):
        with pytest.raises(ValueError):
            run_streaming_pipeline([])
