"""Tests for the 3D-via-2D-slices linear processing (paper §III-D)."""

import numpy as np
import pytest

from repro.core.grid import TensorHierarchy
from repro.core.mass import mass_apply
from repro.core.solver import solve_correction
from repro.core.transfer import transfer_apply
from repro.kernels.batch3d import SlicedLinearProcessor


@pytest.fixture
def setup(rng):
    hier = TensorHierarchy.from_shape((17, 13, 9))
    return hier, rng


@pytest.mark.parametrize("axis", [0, 1, 2])
class TestSliceEqualsVectorized:
    def _ops(self, hier, axis):
        # level where this axis still coarsens
        for l in range(hier.L, 0, -1):
            if hier.coarsens(l, axis):
                return l, hier.level_ops(l, axis)
        pytest.skip("axis never coarsens")

    def test_mass(self, setup, axis):
        hier, rng = setup
        l, ops = self._ops(hier, axis)
        v = rng.standard_normal(hier.level_shape(l))
        proc = SlicedLinearProcessor(ops, n_streams=4)
        out = proc.mass_multiply(v, axis)
        np.testing.assert_allclose(out, mass_apply(v, ops.h_fine, axis=axis), atol=1e-13)

    def test_transfer(self, setup, axis):
        hier, rng = setup
        l, ops = self._ops(hier, axis)
        v = rng.standard_normal(hier.level_shape(l))
        proc = SlicedLinearProcessor(ops)
        out = proc.transfer_multiply(v, axis)
        np.testing.assert_allclose(out, transfer_apply(v, ops, axis=axis), atol=1e-13)

    def test_solve(self, setup, axis):
        hier, rng = setup
        l, ops = self._ops(hier, axis)
        shape = list(hier.level_shape(l))
        shape[axis] = ops.m_coarse
        g = rng.standard_normal(tuple(shape))
        proc = SlicedLinearProcessor(ops)
        out = proc.solve(g, axis)
        np.testing.assert_allclose(out, solve_correction(g, ops, axis=axis), atol=1e-9)


class TestLaunchAccounting:
    def test_one_launch_per_slice(self, rng):
        hier = TensorHierarchy.from_shape((9, 9, 9))
        ops = hier.level_ops(hier.L, 0)
        proc = SlicedLinearProcessor(ops, n_streams=2)
        proc.mass_multiply(rng.standard_normal((9, 9, 9)), 0)
        assert len(proc.launches) == 9  # slices along the remaining axis
        assert {ln.stream for ln in proc.launches} == {0, 1}

    def test_makespan_matches_wave_model(self, rng):
        hier = TensorHierarchy.from_shape((9, 9, 9))
        ops = hier.level_ops(hier.L, 0)
        proc = SlicedLinearProcessor(ops, n_streams=4)
        proc.mass_multiply(rng.standard_normal((9, 9, 9)), 0)
        dur = 1e-4
        waves = -(-len(proc.launches) // 4)
        assert proc.modeled_makespan(dur) == pytest.approx(waves * dur)

    def test_rejects_2d(self, rng):
        hier = TensorHierarchy.from_shape((9, 9))
        ops = hier.level_ops(hier.L, 0)
        with pytest.raises(ValueError):
            SlicedLinearProcessor(ops).mass_multiply(rng.standard_normal((9, 9)), 0)

    def test_full_correction_pipeline_slicewise(self, rng):
        """The complete per-dimension correction (mass→transfer→solve)
        computed slice-wise equals the vectorized 3D pipeline."""
        from repro.core.coefficients import compute_coefficients
        from repro.core.correction import compute_correction

        hier = TensorHierarchy.from_shape((9, 9, 9))
        l = hier.L
        v = rng.standard_normal((9, 9, 9))
        c = compute_coefficients(v, hier, l)
        f = c
        for axis in hier.coarsening_dims(l):
            ops = hier.level_ops(l, axis)
            proc = SlicedLinearProcessor(ops, n_streams=8)
            f = proc.mass_multiply(f, axis)
            f = proc.transfer_multiply(f, axis)
            f = proc.solve(f, axis)
        ref = compute_correction(c, hier, l)
        np.testing.assert_allclose(f, ref, atol=1e-10)
