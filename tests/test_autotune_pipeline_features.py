"""Tests for the autotuner, the pipeline model, and feature metrics."""

import numpy as np
import pytest

from repro.analysis.features import (
    extrema_preservation,
    feature_report,
    gradient_energy_ratio,
    histogram_similarity,
    mass_conservation,
)
from repro.cluster.pipeline import PipelineModel, workflow_pipeline
from repro.core.refactor import Refactorer
from repro.kernels.autotune import autotune
from repro.workloads.synthetic import multiscale


class TestAutotune:
    def test_3d_prefers_streams(self):
        res = autotune((129, 129, 129))
        assert res.best.n_streams > 1
        assert res.best_seconds <= res.baseline_seconds
        assert res.gain >= 1.0
        assert res.evaluated == 20

    def test_2d_streams_irrelevant(self):
        res = autotune((1025, 1025))
        # 2D has a single launch per kernel: stream count cannot help
        by_streams = {}
        for opts, t in res.table:
            by_streams.setdefault(opts.lpf_threads_per_vector, set()).add(round(t, 12))
        assert all(len(v) == 1 for v in by_streams.values())

    def test_table_sorted(self):
        res = autotune((65, 65, 65))
        times = [t for _, t in res.table]
        assert times == sorted(times)

    def test_small_grid_prefers_fewer_threads_or_ties(self):
        # on tiny grids occupancy is launch-bound; tuning must not lose
        res = autotune((33, 33))
        assert res.gain >= 1.0


class TestPipelineModel:
    def test_makespan_formula(self):
        p = PipelineModel(("a", "b", "c"), (1.0, 3.0, 2.0))
        assert p.makespan(1) == pytest.approx(6.0)
        assert p.makespan(5) == pytest.approx(6.0 + 4 * 3.0)
        assert p.bottleneck == "b"

    def test_overlap_gain_approaches_stage_ratio(self):
        p = PipelineModel(("a", "b"), (1.0, 1.0))
        # two equal stages: asymptotic gain -> 2
        assert p.overlap_gain(1000) == pytest.approx(2.0, rel=0.01)

    def test_throughput(self):
        p = PipelineModel(("x",), (0.5,))
        assert p.steady_state_throughput(10**9) == pytest.approx(2e9)

    def test_validation(self):
        with pytest.raises(ValueError):
            PipelineModel(("a",), (1.0, 2.0))
        with pytest.raises(ValueError):
            PipelineModel((), ())
        with pytest.raises(ValueError):
            PipelineModel(("a",), (-1.0,))
        with pytest.raises(ValueError):
            PipelineModel(("a",), (1.0,)).makespan(0)

    def test_workflow_pipeline_write_bound(self):
        p = workflow_pipeline(k_classes=10)
        assert p.bottleneck == "write(PFS)"  # full data: I/O dominates
        # streaming hides nearly the whole refactor cost
        assert p.overlap_gain(100) > 1.05

    def test_gpudirect_removes_transfer_stage(self):
        with_dma = workflow_pipeline(gpudirect=True)
        without = workflow_pipeline(gpudirect=False)
        assert len(without.stage_names) == len(with_dma.stage_names) + 1
        assert without.makespan(10) >= with_dma.makespan(10)

    def test_k_validation(self):
        with pytest.raises(ValueError):
            workflow_pipeline(k_classes=99)


class TestFeatureMetrics:
    @pytest.fixture(scope="class")
    def fields(self):
        exact = multiscale((65, 65))
        cc = Refactorer((65, 65)).refactor(exact)
        coarse = cc.reconstruct(3)
        fine = cc.reconstruct(cc.n_classes)
        return exact, coarse, fine

    def test_perfect_on_identity(self, fields):
        exact, _, fine = fields
        rep = feature_report(fine, exact)
        assert all(v > 0.999 for v in rep.values()), rep

    def test_scores_in_unit_interval(self, fields):
        exact, coarse, _ = fields
        rep = feature_report(coarse, exact)
        assert all(0.0 <= v <= 1.0 for v in rep.values())

    def test_scores_improve_with_classes(self, fields):
        exact, coarse, _ = fields
        cc = Refactorer((65, 65)).refactor(exact)
        mid = cc.reconstruct(cc.n_classes - 1)
        for name, score_fn in (
            ("gradient", gradient_energy_ratio),
            ("hist", histogram_similarity),
        ):
            assert score_fn(mid, exact) >= score_fn(coarse, exact) - 0.02, name

    def test_gradient_energy_hardest_for_prefixes(self, fields):
        exact, coarse, _ = fields
        rep = feature_report(coarse, exact)
        # smooth features (mass) survive a coarse prefix far better than
        # gradient energy, which lives in the fine classes
        assert rep["mass"] > rep["gradient_energy"]

    def test_mass_conservation_is_tight_for_refactoring(self, rng):
        # on a field with substantial mean (the relative metric is
        # ill-conditioned near zero mean), L2-projected coarsening nearly
        # conserves the integral even from a strict prefix
        exact = multiscale((65, 65)) + 3.0
        cc = Refactorer((65, 65)).refactor(exact)
        assert mass_conservation(cc.reconstruct(cc.n_classes - 2), exact) > 0.95

    def test_extrema_detect_clipping(self, rng):
        exact = rng.standard_normal((32, 32))
        clipped = np.clip(exact, -0.5, 0.5)
        assert extrema_preservation(clipped, exact) < 0.9

    def test_degenerate_constant_fields(self):
        c = np.full((8, 8), 2.0)
        assert histogram_similarity(c, c) == 1.0
        assert extrema_preservation(c, c) == 1.0
        assert mass_conservation(c, c) == 1.0
        assert gradient_energy_ratio(c, c) == 1.0
