"""Tests for coefficient computation/restoration and prolongation."""

import numpy as np
import pytest

from repro.core.coefficients import (
    compute_coefficients,
    interpolate_coarse,
    prolong,
    restore_from_coefficients,
    restrict_nodes,
    zero_coarse_entries,
)
from repro.core.decompose import restrict_all
from repro.core.grid import TensorHierarchy
from repro.workloads.synthetic import multilinear

from conftest import nonuniform_coords


class TestProlong:
    def test_prolong_is_exact_at_coarse_nodes(self, rng):
        h = TensorHierarchy.from_shape((17,))
        ops = h.level_ops(h.L, 0)
        vc = rng.standard_normal(ops.m_coarse)
        out = prolong(vc, ops)
        np.testing.assert_array_equal(out[ops.coarse_pos], vc)

    def test_prolong_linear_exact(self):
        h = TensorHierarchy.from_shape((17,))
        ops = h.level_ops(h.L, 0)
        vc = 3.0 * ops.x_coarse + 1.0
        np.testing.assert_allclose(prolong(vc, ops), 3.0 * ops.x_fine + 1.0, rtol=1e-13)

    def test_prolong_restrict_is_identity(self, rng):
        h = TensorHierarchy.from_shape((33,))
        ops = h.level_ops(h.L, 0)
        vc = rng.standard_normal(ops.m_coarse)
        np.testing.assert_array_equal(restrict_nodes(prolong(vc, ops), ops), vc)

    def test_shape_validation(self, rng):
        h = TensorHierarchy.from_shape((17,))
        ops = h.level_ops(h.L, 0)
        with pytest.raises(ValueError):
            prolong(rng.standard_normal(17), ops)  # fine-sized input
        with pytest.raises(ValueError):
            restrict_nodes(rng.standard_normal(9), ops)  # coarse-sized input


class TestCoefficients:
    def test_zero_at_coarse_positions_exactly(self, rng, any_shape):
        h = TensorHierarchy.from_shape(any_shape)
        if h.L == 0:
            pytest.skip("no levels to decompose")
        v = rng.standard_normal(any_shape)
        c = compute_coefficients(v, h, h.L)
        coarse = restrict_all(c, h, h.L)
        np.testing.assert_array_equal(coarse, np.zeros_like(coarse))

    def test_multilinear_has_zero_details(self):
        shape = (17, 17)
        h = TensorHierarchy.from_shape(shape)
        v = multilinear(shape)
        for l in range(h.L, 0, -1):
            c = compute_coefficients(v, h, l)
            assert np.abs(c).max() < 1e-12
            v = restrict_all(v, h, l)

    def test_restore_inverts_compute(self, rng, any_shape):
        h = TensorHierarchy.from_shape(any_shape)
        if h.L == 0:
            pytest.skip("no levels")
        v = rng.standard_normal(any_shape)
        c = compute_coefficients(v, h, h.L)
        vc = restrict_all(v, h, h.L)
        back = restore_from_coefficients(c, vc, h, h.L)
        # c + interp vs v - interp round-trips to within an ulp
        np.testing.assert_allclose(back, v, rtol=0, atol=1e-12)

    def test_restore_reinjects_exact_coarse_values(self, rng):
        # even if c carries garbage at coarse positions, restore must not
        # leak it into the nodal values
        h = TensorHierarchy.from_shape((9, 9))
        v = rng.standard_normal((9, 9))
        c = compute_coefficients(v, h, h.L)
        vc = restrict_all(v, h, h.L)
        c_noisy = c + 0.0
        mesh = np.ix_(h.level_ops(h.L, 0).coarse_pos, h.level_ops(h.L, 1).coarse_pos)
        c_noisy[mesh] = 99.0
        back = restore_from_coefficients(c_noisy, vc, h, h.L)
        np.testing.assert_array_equal(back[mesh], vc)

    def test_nonuniform_coords(self, rng):
        shape = (17, 9)
        coords = nonuniform_coords(shape, rng)
        h = TensorHierarchy.from_shape(shape, coords)
        v = rng.standard_normal(shape)
        c = compute_coefficients(v, h, h.L)
        vc = restrict_all(v, h, h.L)
        np.testing.assert_allclose(
            restore_from_coefficients(c, vc, h, h.L), v, atol=1e-12
        )

    def test_interpolate_coarse_shape(self, rng):
        h = TensorHierarchy.from_shape((17, 9))
        vc = rng.standard_normal(h.level_shape(h.L - 1))
        out = interpolate_coarse(vc, h, h.L)
        assert out.shape == h.level_shape(h.L)

    def test_wrong_level_shape_raises(self, rng):
        h = TensorHierarchy.from_shape((17,))
        with pytest.raises(ValueError):
            compute_coefficients(rng.standard_normal(9), h, h.L)
        with pytest.raises(ValueError):
            restore_from_coefficients(
                rng.standard_normal(17), rng.standard_normal(17), h, h.L
            )

    def test_zero_coarse_entries(self, rng):
        h = TensorHierarchy.from_shape((9, 9))
        c = rng.standard_normal((9, 9))
        zero_coarse_entries(c, h, h.L)
        coarse = restrict_all(c, h, h.L)
        np.testing.assert_array_equal(coarse, np.zeros_like(coarse))
        # detail entries untouched (non-zero with probability 1)
        assert np.count_nonzero(c) == 9 * 9 - 5 * 5

    def test_mixed_depth_dims(self, rng):
        # one dim stops coarsening early; its nodes are all "coarse"
        h = TensorHierarchy.from_shape((17, 3))
        l = h.L  # dim1 local level = 1 here? global L=4, dim1 L=1 -> coarsens only at l=4
        v = rng.standard_normal((17, 3))
        c = compute_coefficients(v, h, l)
        vc = restrict_all(v, h, l)
        np.testing.assert_allclose(restore_from_coefficients(c, vc, h, l), v, atol=1e-12)
        # at level 1, only dim 0 coarsens
        assert h.coarsening_dims(1) == (0,)
