"""Vectorized entropy/quantize fast path vs the retained scalar reference.

The fast path must be *bit-identical* on encode (same payload bytes and
header) and *exact* on decode for adversarial inputs: single-symbol
streams, escape-heavy streams (more distinct values than the symbol
table holds), all-negative bins, and real quantizer output for every
shape in ``ROUNDTRIP_SHAPES``.
"""

import numpy as np
import pytest

from conftest import ROUNDTRIP_SHAPES

from repro.compress.huffman import (
    _SYNC_BLOCK,
    huffman_decode,
    huffman_decode_scalar,
    huffman_encode,
    huffman_encode_scalar,
)
from repro.compress.lossless import decode_classes, encode_classes
from repro.compress.mgard import MgardCompressor
from repro.compress.plan import compression_plan, refactor_plan
from repro.compress.quantizer import Quantizer
from repro.core.grid import hierarchy_for
from repro.core.refactor import Refactorer
from repro.workloads.synthetic import multiscale


def _adversarial_arrays(rng):
    yield "empty", np.zeros(0, dtype=np.int64)
    yield "single-value", np.full(1, -3, dtype=np.int64)
    yield "single-symbol", np.full(4097, 42, dtype=np.int64)
    yield "two-symbol", rng.choice([0, 1], 1000).astype(np.int64)
    yield "all-negative", -np.abs(rng.integers(1, 40, 3000)).astype(np.int64)
    yield "skewed", (rng.geometric(0.4, 20000).astype(np.int64) - 1) * rng.choice(
        [-1, 1], 20000
    )
    yield "escape-heavy", rng.integers(-(2**60), 2**60, 4000).astype(np.int64)
    yield "extremes", np.array(
        [-(2**63), 2**63 - 1, 0, -1, 1, 2**62, -(2**62)], dtype=np.int64
    )
    yield "sync-boundary", np.arange(2 * _SYNC_BLOCK + 1, dtype=np.int64) % 5
    yield "exact-sync-block", np.arange(_SYNC_BLOCK, dtype=np.int64) % 3


class TestBitIdentical:
    @pytest.mark.parametrize("max_table", [4096, 16, 2])
    def test_payloads_and_headers_match_scalar(self, rng, max_table):
        for name, arr in _adversarial_arrays(rng):
            p_fast, h_fast = huffman_encode(arr, max_table=max_table)
            p_ref, h_ref = huffman_encode_scalar(arr, max_table=max_table)
            assert p_fast == p_ref, (name, max_table)
            assert h_fast == h_ref, (name, max_table)

    def test_quantized_fields_all_shapes(self, rng):
        for shape in ROUNDTRIP_SHAPES:
            cc = Refactorer(shape).refactor(rng.standard_normal(shape))
            bins, _, _ = Quantizer(1e-3).quantize_flat(cc)
            p_fast, h_fast = huffman_encode(bins)
            p_ref, h_ref = huffman_encode_scalar(bins)
            assert p_fast == p_ref and h_fast == h_ref, shape
            np.testing.assert_array_equal(huffman_decode(p_fast, h_fast), bins)


class TestExactDecode:
    def test_roundtrip_all_decoders(self, rng):
        for name, arr in _adversarial_arrays(rng):
            payload, header = huffman_encode(arr, max_table=64)
            np.testing.assert_array_equal(
                huffman_decode(payload, header), arr, err_msg=f"{name} fast"
            )
            np.testing.assert_array_equal(
                huffman_decode_scalar(payload, header), arr, err_msg=f"{name} scalar"
            )
            # chain fallback: same payload, header without sync offsets
            no_sync = {k: v for k, v in header.items() if k != "sync"}
            np.testing.assert_array_equal(
                huffman_decode(payload, no_sync), arr, err_msg=f"{name} chain"
            )

    def test_truncated_payload_detected_by_both_paths(self, rng):
        arr = rng.integers(-5, 5, 3 * _SYNC_BLOCK).astype(np.int64)
        payload, header = huffman_encode(arr)
        assert "sync" in header
        with pytest.raises(ValueError):
            huffman_decode(payload[: len(payload) // 2], header)
        no_sync = {k: v for k, v in header.items() if k != "sync"}
        with pytest.raises(ValueError):
            huffman_decode(payload[: len(payload) // 2], no_sync)

    def test_negative_header_counts_rejected(self, rng):
        arr = rng.integers(-5, 5, 100).astype(np.int64)
        payload, header = huffman_encode(arr)
        for key in ("n", "bits"):
            bad = dict(header)
            bad[key] = -3
            with pytest.raises(ValueError):
                huffman_decode(payload, bad)

    def test_corrupt_sync_offsets_detected(self, rng):
        arr = rng.integers(-5, 5, 3 * _SYNC_BLOCK).astype(np.int64)
        payload, header = huffman_encode(arr)
        bad = dict(header)
        bad["sync"] = [o + 1 for o in header["sync"]]
        with pytest.raises(ValueError):
            huffman_decode(payload, bad)


class TestBatchedClasses:
    def test_encode_classes_roundtrip(self, rng):
        for backend in ("zlib", "huffman"):
            sizes = [9, 100, 0, 1, 512]
            bins = rng.integers(-300, 300, sum(sizes)).astype(np.int64)
            payload, header = encode_classes(bins, sizes, backend=backend)
            flat, got = decode_classes(payload, header)
            assert got == sizes
            np.testing.assert_array_equal(flat, bins)

    def test_size_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            encode_classes(np.zeros(5, dtype=np.int64), [2, 2])
        payload, header = encode_classes(np.zeros(4, dtype=np.int64), [2, 2])
        header["class_sizes"] = [2, 3]
        with pytest.raises(ValueError):
            decode_classes(payload, header)

    def test_quantize_flat_matches_per_class(self, rng):
        cc = Refactorer((33, 17)).refactor(rng.standard_normal((33, 17)))
        q = Quantizer(1e-3)
        qc = q.quantize(cc)
        bins, sizes, steps = q.quantize_flat(cc)
        assert steps == qc.steps
        assert sizes == [b.size for b in qc.bins]
        np.testing.assert_array_equal(bins, np.concatenate(qc.bins))
        back = Quantizer.dequantize_flat(bins, sizes, steps)
        for flat_cls, b, step in zip(back, qc.bins, qc.steps):
            np.testing.assert_allclose(flat_cls, b.astype(np.float64) * step)

    @pytest.mark.parametrize("backend", ["zlib", "huffman"])
    def test_batched_and_per_class_blobs_interchange(self, backend):
        shape = (65, 65)
        data = multiscale(shape)
        hier = hierarchy_for(shape)
        batched = MgardCompressor(hier, 1e-3, backend=backend, batch_classes=True)
        legacy = MgardCompressor(hier, 1e-3, backend=backend, batch_classes=False)
        blob_b = batched.compress(data)
        blob_l = legacy.compress(data)
        assert len(blob_b.payloads) == 1 and "class_sizes" in blob_b.headers[0]
        assert len(blob_l.payloads) > 1
        # either compressor decompresses either layout within the bound
        for comp in (batched, legacy):
            for blob in (blob_b, blob_l):
                assert np.abs(comp.decompress(blob) - data).max() <= 1e-3


class TestPlanCache:
    def test_hierarchy_cache_shares_instances(self, rng):
        from conftest import nonuniform_coords

        shape = (17, 9)
        assert hierarchy_for(shape) is hierarchy_for(shape)
        coords = nonuniform_coords(shape, rng)
        assert hierarchy_for(shape, coords) is hierarchy_for(shape, coords)
        assert hierarchy_for(shape) is not hierarchy_for(shape, coords)

    def test_refactorers_share_cached_hierarchy(self):
        assert Refactorer((33, 33)).hier is Refactorer((33, 33)).hier

    def test_compression_plan_cached_and_seeded(self):
        plan = compression_plan((33, 33), tol=1e-2)
        assert plan is compression_plan((33, 33), tol=1e-2)
        assert plan is not compression_plan((33, 33), tol=1e-3)
        assert plan.refactor is refactor_plan((33, 33))
        assert list(plan.steps) == Quantizer(1e-2).steps_for(plan.refactor.n_classes)

    def test_for_shape_roundtrip(self):
        shape = (33, 33)
        data = multiscale(shape)
        comp = MgardCompressor.for_shape(shape, 1e-3)
        again = MgardCompressor.for_shape(shape, 1e-3)
        assert comp.hier is again.hier
        assert comp.plan is again.plan
        blob = comp.compress(data)
        assert np.abs(again.decompress(blob) - data).max() <= 1e-3
