"""Tests for derived-quantity (QoI) error control."""

import numpy as np
import pytest

from repro.core.grid import TensorHierarchy
from repro.core.qoi import QoIAnalyzer, mean_functional, region_average
from repro.core.refactor import Refactorer
from repro.compress.quantizer import Quantizer
from repro.workloads.synthetic import multiscale, smooth


@pytest.fixture(scope="module")
def setup():
    shape = (17, 17)
    hier = TensorHierarchy.from_shape(shape)
    analyzer = QoIAnalyzer(hier, mean_functional(shape))
    return shape, hier, analyzer


class TestFunctionals:
    def test_mean_weights(self):
        w = mean_functional((4, 5))
        assert w.sum() == pytest.approx(1.0)

    def test_region_average(self):
        w = region_average((8, 8), (slice(0, 4), slice(0, 4)))
        assert w.sum() == pytest.approx(1.0)
        assert (w[4:, :] == 0).all()

    def test_empty_region_rejected(self):
        with pytest.raises(ValueError):
            region_average((8, 8), (slice(0, 0), slice(None)))

    def test_weights_shape_checked(self):
        hier = TensorHierarchy.from_shape((9, 9))
        with pytest.raises(ValueError):
            QoIAnalyzer(hier, np.ones((8, 9)))


class TestSensitivities:
    def test_evaluate_from_classes_exact(self, setup, rng):
        shape, hier, analyzer = setup
        data = rng.standard_normal(shape)
        cc = Refactorer(shape).refactor(data)
        # full prefix reproduces Q(data) exactly (linearity)
        assert analyzer.evaluate_from_classes(cc) == pytest.approx(
            analyzer.evaluate(data), rel=1e-9
        )

    def test_truncation_error_is_exact(self, setup, rng):
        shape, hier, analyzer = setup
        data = multiscale(shape)
        cc = Refactorer(shape).refactor(data)
        q_exact = analyzer.evaluate(data)
        for k in (1, 2, cc.n_classes - 1):
            q_trunc = analyzer.evaluate(cc.reconstruct(k))
            predicted = analyzer.truncation_error(cc, k)
            assert predicted == pytest.approx(abs(q_exact - q_trunc), abs=1e-10)

    def test_quantization_bound_holds(self, setup):
        shape, hier, analyzer = setup
        data = smooth(shape)
        cc = Refactorer(shape).refactor(data)
        q = Quantizer(1e-2)
        qc = q.quantize(cc)
        back = q.dequantize(qc, cc)
        actual = abs(analyzer.evaluate(back.reconstruct()) - analyzer.evaluate(data))
        bound = analyzer.quantization_bound(qc.steps)
        assert actual <= bound + 1e-12

    def test_classes_for_qoi_tolerance(self, setup):
        shape, hier, analyzer = setup
        cc = Refactorer(shape).refactor(multiscale(shape))
        for tol in (1e-1, 1e-4, 0.0):
            k = analyzer.classes_for_qoi_tolerance(cc, tol)
            assert analyzer.truncation_error(cc, k) <= tol + 1e-15
        with pytest.raises(ValueError):
            analyzer.classes_for_qoi_tolerance(cc, -1.0)

    def test_localized_functional_needs_fine_classes_less(self, rng):
        """A broad average is dominated by coarse classes; its truncation
        error at k=1 should be far below the field's own error."""
        shape = (17, 17)
        hier = TensorHierarchy.from_shape(shape)
        analyzer = QoIAnalyzer(hier, mean_functional(shape))
        data = smooth(shape)
        cc = Refactorer(shape).refactor(data)
        q_err = analyzer.truncation_error(cc, 1)
        field_err = float(np.abs(cc.reconstruct(1) - data).max())
        assert q_err < 0.25 * field_err

    def test_k_validation(self, setup, rng):
        shape, hier, analyzer = setup
        cc = Refactorer(shape).refactor(rng.standard_normal(shape))
        with pytest.raises(ValueError):
            analyzer.truncation_error(cc, 0)
        with pytest.raises(ValueError):
            analyzer.quantization_bound([1.0])


class TestAdjoint:
    """The one-pass adjoint equals the basis-forward oracle everywhere."""

    @pytest.mark.parametrize("shape", [(9,), (17, 9), (5, 5, 5), (16, 7)])
    def test_adjoint_identity(self, shape, rng):
        from repro.core.adjoint import recompose_adjoint
        from repro.core.decompose import recompose

        hier = TensorHierarchy.from_shape(shape)
        x = rng.standard_normal(shape)
        w = rng.standard_normal(shape)
        lhs = float(np.sum(w * recompose(x, hier)))
        rhs = float(np.sum(recompose_adjoint(w, hier) * x))
        assert lhs == pytest.approx(rhs, rel=1e-12)

    @pytest.mark.parametrize("shape", [(9, 9), (17,), (5, 5, 5)])
    def test_adjoint_matches_basis_oracle(self, shape, rng):
        hier = TensorHierarchy.from_shape(shape)
        w = rng.standard_normal(shape)
        fast = QoIAnalyzer(hier, w, method="adjoint")
        oracle = QoIAnalyzer(hier, w, method="basis")
        for l in range(len(fast._sensitivities)):
            np.testing.assert_allclose(
                fast.sensitivity(l), oracle.sensitivity(l), atol=1e-10
            )

    def test_adjoint_scales_to_large_grids(self, rng):
        # the basis oracle would need 66k reconstructions here; the
        # adjoint does it in one pass
        shape = (257, 257)
        hier = TensorHierarchy.from_shape(shape)
        qa = QoIAnalyzer(hier, mean_functional(shape))
        data = rng.standard_normal(shape)
        cc = Refactorer(shape).refactor(data)
        assert qa.evaluate_from_classes(cc) == pytest.approx(
            qa.evaluate(data), rel=1e-9
        )

    def test_unknown_method(self):
        hier = TensorHierarchy.from_shape((9, 9))
        with pytest.raises(ValueError):
            QoIAnalyzer(hier, mean_functional((9, 9)), method="magic")

    def test_nonuniform_adjoint(self, rng):
        from conftest import nonuniform_coords
        from repro.core.adjoint import recompose_adjoint
        from repro.core.decompose import recompose

        shape = (17, 9)
        hier = TensorHierarchy.from_shape(shape, nonuniform_coords(shape, rng))
        x = rng.standard_normal(shape)
        w = rng.standard_normal(shape)
        lhs = float(np.sum(w * recompose(x, hier)))
        rhs = float(np.sum(recompose_adjoint(w, hier) * x))
        assert lhs == pytest.approx(rhs, rel=1e-12)
