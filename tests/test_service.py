"""Tests for the compression service: protocol, cache, batcher, server.

Covers the concurrent-reader satellite head-on: protocol round-trip
fuzz (truncated/oversized frames are clean errors, never hangs),
micro-batcher coalescing and failure propagation, the reader's
decoded-step cache and generation-keyed invalidation, thread-safety of
:class:`StepStreamReader` under simultaneous ``read_step`` /
``read_region`` / ``refresh``, end-to-end server behaviour (ingest,
retrieval, progressive precision, shedding), and the subprocess
kill-and-reconnect chaos case.
"""

from __future__ import annotations

import asyncio
import shutil
import socket
import threading
import time

import numpy as np
import pytest

from repro.io.stream import StepStreamReader, StepStreamWriter
from repro.io.workflow import follow_stream
from repro.service import protocol
from repro.service.batcher import MicroBatcher
from repro.service.cache import LRUCache
from repro.service.client import AsyncServiceClient, ServiceClient
from repro.service.protocol import BusyError, ProtocolError, RemoteError
from repro.service.server import ServiceConfig
from repro.experiments.service_exp import _ServerThread, _chaos_case


def _frames(shape, n, seed=0):
    rng = np.random.default_rng(seed)
    base = np.cumsum(rng.standard_normal(shape), axis=0)
    return [base + 0.05 * t * rng.standard_normal(shape) for t in range(n)]


# ----------------------------------------------------------------------
# protocol


def _feed(*chunks: bytes) -> asyncio.StreamReader:
    r = asyncio.StreamReader()
    for c in chunks:
        r.feed_data(c)
    r.feed_eof()
    return r


class TestProtocolFraming:
    def test_prefix_roundtrip(self):
        raw = protocol.frame_prefix({"op": "ping", "id": 3}, 128)
        hlen, blen = protocol.parse_prefix(raw[:16])
        assert blen == 128
        assert raw[16:].decode() == '{"op":"ping","id":3}'
        assert hlen == len(raw) - 16

    def test_async_roundtrip_memoryview_body(self):
        body = np.arange(60.0).reshape(3, 20)

        async def run():
            reader = _feed(
                protocol.frame_prefix({"op": "x"}, body.nbytes),
                body.data.cast("B"),
            )
            return await protocol.read_frame(reader)

        header, got = asyncio.run(run())
        assert header == {"op": "x"}
        assert np.array_equal(
            np.frombuffer(got, dtype=np.float64).reshape(3, 20), body
        )

    def test_clean_eof_between_frames_is_none(self):
        async def run():
            return await protocol.read_frame(_feed())

        assert asyncio.run(run()) is None

    @pytest.mark.parametrize("cut", [1, 8, 15, 17, 22])
    def test_truncated_frames_error_not_hang(self, cut):
        """A peer dying mid-frame surfaces immediately as ProtocolError."""
        whole = protocol.frame_prefix({"op": "ping"}, 4) + b"abcd"

        async def run():
            return await asyncio.wait_for(
                protocol.read_frame(_feed(whole[:cut])), timeout=2
            )

        with pytest.raises(ProtocolError, match="closed inside"):
            asyncio.run(run())

    def test_bad_magic(self):
        with pytest.raises(ProtocolError, match="magic"):
            protocol.parse_prefix(b"XXXX" + bytes(12))

    def test_oversized_header_and_body_rejected_before_alloc(self):
        import struct

        raw = struct.pack("<4sIQ", protocol.MAGIC, 2**25, 0)
        with pytest.raises(ProtocolError, match="header"):
            protocol.parse_prefix(raw)
        raw = struct.pack("<4sIQ", protocol.MAGIC, 2, 2**62)
        with pytest.raises(ProtocolError, match="body"):
            protocol.parse_prefix(raw)

    @pytest.mark.parametrize("hraw", [b"not json", b'"a string"', b"[1,2]"])
    def test_garbage_header_is_protocol_error(self, hraw):
        async def run():
            reader = _feed(
                protocol._PREFIX.pack(protocol.MAGIC, len(hraw), 0), hraw
            )
            return await protocol.read_frame(reader)

        with pytest.raises(ProtocolError):
            asyncio.run(run())

    def test_sync_roundtrip_over_socketpair(self):
        a, b = socket.socketpair()
        try:
            body = np.linspace(0, 1, 500)
            protocol.send_frame_sync(a, {"op": "put", "n": 1}, body.data.cast("B"))
            header, got = protocol.recv_frame_into(b)
            assert header == {"op": "put", "n": 1}
            # np.frombuffer wraps the landing bytearray without a copy
            arr = np.frombuffer(got, dtype=np.float64)
            assert np.array_equal(arr, body)
            protocol.send_frame_sync(a, {"empty": True})
            header, got = protocol.recv_frame_into(b)
            assert header == {"empty": True} and len(got) == 0
        finally:
            a.close()
            b.close()

    def test_sync_truncated_peer_death(self):
        a, b = socket.socketpair()
        try:
            a.sendall(protocol.frame_prefix({"op": "x"}, 100))  # body never comes
            a.close()
            with pytest.raises(ProtocolError, match="closed inside"):
                protocol.recv_frame_into(b)
        finally:
            b.close()


# ----------------------------------------------------------------------
# cache


class TestLRUCache:
    def test_hit_miss_and_stats(self):
        c = LRUCache(max_bytes=1 << 20)
        a = np.ones(10)
        assert c.get("k") is None
        assert c.put("k", a)
        assert c.get("k") is a
        s = c.stats()
        assert s["hits"] == 1 and s["misses"] == 1 and s["hit_rate"] == 0.5

    def test_lru_eviction_by_bytes(self):
        one_kb = np.zeros(128)  # 1024 bytes
        c = LRUCache(max_bytes=3 * one_kb.nbytes)
        for k in "abc":
            c.put(k, one_kb.copy())
        c.get("a")  # refresh a → b is now least recent
        c.put("d", one_kb.copy())
        assert c.get("b") is None
        assert c.get("a") is not None and c.get("d") is not None
        assert c.stats()["evictions"] == 1

    def test_max_entries_bound(self):
        c = LRUCache(max_bytes=1 << 30, max_entries=2)
        for i in range(4):
            c.put(i, np.zeros(4))
        assert c.stats()["entries"] == 2

    def test_disabled_and_oversized(self):
        off = LRUCache(max_bytes=0)
        assert not off.enabled
        assert not off.put("k", np.zeros(4))
        assert off.get("k") is None
        small = LRUCache(max_bytes=16)
        assert not small.put("big", np.zeros(100))

    def test_clear(self):
        c = LRUCache()
        c.put("k", np.zeros(4))
        c.clear()
        assert c.get("k") is None and c.stats()["entries"] == 0


# ----------------------------------------------------------------------
# batcher


class TestMicroBatcher:
    def test_coalesces_concurrent_same_key(self):
        calls = []

        async def run():
            b = MicroBatcher()

            async def supplier():
                calls.append(1)
                await asyncio.sleep(0.02)
                return "decoded"

            outs = await asyncio.gather(*[b.run("k", supplier) for _ in range(10)])
            return b, outs

        b, outs = asyncio.run(run())
        assert outs == ["decoded"] * 10
        assert len(calls) == 1
        assert b.stats()["joined"] == 9 and b.stats()["leaders"] == 1
        assert b.coalesce_rate == pytest.approx(0.9)

    def test_distinct_keys_do_not_coalesce(self):
        async def run():
            b = MicroBatcher()

            async def supplier():
                await asyncio.sleep(0.01)
                return 1

            await asyncio.gather(*[b.run(k, supplier) for k in range(5)])
            return b.stats()

        assert asyncio.run(run())["joined"] == 0

    def test_errors_propagate_to_all_then_key_retires(self):
        async def run():
            b = MicroBatcher()
            boom = RuntimeError("decode failed")

            async def bad():
                await asyncio.sleep(0.01)
                raise boom

            res = await asyncio.gather(
                *[b.run("k", bad) for _ in range(4)], return_exceptions=True
            )
            assert all(r is boom for r in res)

            async def good():
                return 42

            assert await b.run("k", good) == 42  # fresh batch, no stale error
            return b.stats()

        stats = asyncio.run(run())
        assert stats["errors"] == 1

    def test_adaptive_window_grows_and_decays(self):
        async def run():
            b = MicroBatcher(max_window_s=0.002, min_window_s=0.0005)
            assert b.window_s == 0.0

            async def slow():
                await asyncio.sleep(0.01)
                return 1

            await asyncio.gather(*[b.run("k", slow) for _ in range(3)])
            grown = b.window_s
            for _ in range(8):  # solo traffic decays it back to zero
                await b.run("solo", slow)
            return grown, b.window_s

        grown, decayed = asyncio.run(run())
        assert grown >= 0.0005
        assert decayed == 0.0

    def test_zero_window_means_pure_single_flight(self):
        async def run():
            b = MicroBatcher(max_window_s=0.0)

            async def s():
                return 1

            await b.run("k", s)
            return b.window_s

        assert asyncio.run(run()) == 0.0


# ----------------------------------------------------------------------
# reader cache + generation + wait_for_step


class TestReaderStepCache:
    def test_cache_hits_skip_decode(self, tmp_path):
        frames = _frames((9, 8), 5)
        w = StepStreamWriter(tmp_path / "s", (9, 8), tol=1e-3, key_interval=2)
        for f in frames:
            w.append(f)
        r = StepStreamReader(tmp_path / "s")
        decodes = 0
        orig = r._read_step_impl

        def counting(step, on_error="recover"):
            nonlocal decodes
            decodes += 1
            return orig(step, on_error)

        r._read_step_impl = counting
        a = r.read_step(3)
        b = r.read_step(3)
        assert decodes == 1
        assert np.array_equal(a, b)
        a[0, 0] = 1e9  # returned copies must not poison the cache
        assert r.read_step(3)[0, 0] != 1e9
        info = r.cache_info()
        assert info["hits"] == 2 and info["misses"] == 1

    def test_appends_keep_generation_and_cache(self, tmp_path):
        frames = _frames((9, 8), 4)
        w = StepStreamWriter(tmp_path / "s", (9, 8), tol=1e-3)
        for f in frames[:2]:
            w.append(f)
        r = StepStreamReader(tmp_path / "s")
        r.read_step(1)
        gen = r.generation
        for f in frames[2:]:
            w.append(f)
        r.refresh()
        assert r.generation == gen  # append-only growth is not a rewrite
        assert r.cache_info()["entries"] == 1

    def test_rewritten_stream_bumps_generation_and_clears(self, tmp_path):
        root = tmp_path / "s"
        w = StepStreamWriter(root, (9, 8), tol=1e-3)
        for f in _frames((9, 8), 3, seed=1):
            w.append(f)
        r = StepStreamReader(root)
        stale = r.read_step(0)
        gen = r.generation
        shutil.rmtree(root)
        w = StepStreamWriter(root, (9, 8), tol=1e-3)
        # same step count: a *shrunk* manifest is (by design) treated as
        # a torn read and ignored; a changed prefix is the rewrite signal
        new_frames = _frames((9, 8), 3, seed=2)
        for f in new_frames:
            w.append(f)
        r.refresh()
        assert r.generation == gen + 1
        assert r.cache_info()["entries"] == 0
        fresh = r.read_step(0)
        assert not np.array_equal(fresh, stale)
        assert np.max(np.abs(fresh - new_frames[0])) <= 1.1e-3

    def test_cache_disabled(self, tmp_path):
        w = StepStreamWriter(tmp_path / "s", (9, 8), tol=1e-3)
        for f in _frames((9, 8), 2):
            w.append(f)
        r = StepStreamReader(tmp_path / "s", cache_steps=0)
        r.read_step(1)
        r.read_step(1)
        assert r.cache_info()["hits"] == 0


class TestWaitForStep:
    def test_existing_step_immediate(self, tmp_path):
        w = StepStreamWriter(tmp_path / "s", (9, 8))
        w.append(_frames((9, 8), 1)[0])
        r = StepStreamReader(tmp_path / "s")
        assert r.wait_for_step(0, timeout=0.01)

    def test_timeout_false(self, tmp_path):
        w = StepStreamWriter(tmp_path / "s", (9, 8))
        w.append(_frames((9, 8), 1)[0])
        r = StepStreamReader(tmp_path / "s")
        t0 = time.monotonic()
        assert not r.wait_for_step(5, timeout=0.08)
        assert time.monotonic() - t0 < 2.0

    def test_sees_concurrent_append(self, tmp_path):
        frames = _frames((9, 8), 2)
        w = StepStreamWriter(tmp_path / "s", (9, 8))
        w.append(frames[0])
        r = StepStreamReader(tmp_path / "s")
        t = threading.Timer(0.08, lambda: w.append(frames[1]))
        t.start()
        try:
            assert r.wait_for_step(1, timeout=5.0, poll_interval=0.005)
        finally:
            t.join()

    def test_validates_knobs(self, tmp_path):
        w = StepStreamWriter(tmp_path / "s", (9, 8))
        w.append(_frames((9, 8), 1)[0])
        r = StepStreamReader(tmp_path / "s")
        with pytest.raises(ValueError):
            r.wait_for_step(0, poll_interval=0.0)


class TestReaderThreadSafety:
    def test_concurrent_read_step_read_region_refresh(self, tmp_path):
        """Hammer one reader from many threads while the writer appends."""
        shape, tol = (17, 16), 1e-3
        frames = _frames(shape, 10)
        w = StepStreamWriter(tmp_path / "s", shape, tol=tol, key_interval=3)
        for f in frames[:6]:
            w.append(f)
        r = StepStreamReader(tmp_path / "s")
        failures: list[str] = []
        stop = threading.Event()

        def hammer(seed):
            rng = np.random.default_rng(seed)
            try:
                while not stop.is_set():
                    step = int(rng.integers(6))
                    kind = rng.integers(3)
                    if kind == 0:
                        got = r.read_step(step)
                    elif kind == 1:
                        got = r.read_region(step, (slice(2, 9),))
                        got = np.pad(got, [(2, shape[0] - 9)] + [(0, 0)])
                        got[0:2] = frames[step][0:2]
                        got[9:] = frames[step][9:]
                    else:
                        r.refresh()
                        continue
                    err = float(np.max(np.abs(got - frames[step])))
                    if err > tol * 1.05:
                        failures.append(f"step {step}: err {err}")
            except Exception as e:  # noqa: BLE001 - report, don't deadlock
                failures.append(f"{type(e).__name__}: {e}")

        threads = [threading.Thread(target=hammer, args=(i,)) for i in range(6)]
        for t in threads:
            t.start()
        for f in frames[6:]:
            w.append(f)
            time.sleep(0.05)
        time.sleep(0.3)
        stop.set()
        for t in threads:
            t.join(10)
        assert not failures, failures[:5]
        r.refresh()
        assert r.n_steps == 10


# ----------------------------------------------------------------------
# server end-to-end


def _serve(root, **over):
    cfg = ServiceConfig(root=root, port=0, **over)
    return _ServerThread(cfg)


class TestServerEndToEnd:
    def test_put_get_region_and_info(self, tmp_path):
        frames = _frames((17, 16), 3)
        server = _serve(tmp_path / "s")
        try:
            with ServiceClient(port=server.port) as c:
                assert c.ping()
                for i, f in enumerate(frames):
                    assert c.put_step(f, time=float(i)) == i
                info = c.info()
                assert info["n_steps"] == 3 and info["mode"] == "refactored"
                assert np.allclose(c.get_step(1), frames[1])
                got = c.get_region(2, [[3, 11], [0, 4]])
                direct = StepStreamReader(tmp_path / "s").read_region(
                    2, (slice(3, 11), slice(0, 4))
                )
                assert got.tobytes() == direct.tobytes()
        finally:
            server.stop()

    def test_progressive_precision_end_to_end(self, tmp_path):
        frames = _frames((17, 16), 2)
        server = _serve(tmp_path / "s")
        try:
            with ServiceClient(port=server.port) as c:
                for f in frames:
                    c.put_step(f)
                levels = c.info()["levels"]
                assert levels >= 3
                errs, bounds = [], []
                for k in range(1, levels + 1):
                    arr, meta = c.get_step(1, level=k, with_meta=True)
                    true = float(np.sqrt(np.mean((arr - frames[1]) ** 2)))
                    errs.append(true)
                    bounds.append(meta["error_bound"])
                    # the advertised bound is the estimated L2 error;
                    # the snorm contract: it tracks truth within the
                    # multilevel equivalence constant
                    if true > 1e-10:
                        assert meta["error_bound"] / true > 0.1
                # refinement: error decreases, bounds decrease
                assert all(a >= b - 1e-12 for a, b in zip(errs, errs[1:]))
                assert all(a >= b for a, b in zip(bounds, bounds[1:]))
                # final level: bound 0, byte-identical to direct read
                final, meta = c.get_step(1, level=levels, with_meta=True)
                assert meta["final"] and meta["error_bound"] == 0.0
                direct = StepStreamReader(tmp_path / "s").read_region(1)
                assert final.tobytes() == direct.tobytes()
        finally:
            server.stop()

    def test_compressed_stream_roundtrip(self, tmp_path):
        frames = _frames((17, 16), 4)
        tol = 1e-3
        server = _serve(tmp_path / "s", tol=tol, key_interval=2)
        try:
            with ServiceClient(port=server.port) as c:
                for f in frames:
                    c.put_step(f)
                got = c.get_step(3)
                assert np.max(np.abs(got - frames[3])) <= tol * 1.05
                with pytest.raises(RemoteError, match="progressive"):
                    c.get_step(0, level=1)
        finally:
            server.stop()

    def test_errors_are_remote_not_fatal(self, tmp_path):
        frames = _frames((9, 8), 1)
        server = _serve(tmp_path / "s")
        try:
            with ServiceClient(port=server.port) as c:
                c.put_step(frames[0])
                with pytest.raises(RemoteError, match="no such step"):
                    c.get_step(7)
                with pytest.raises(RemoteError, match="region"):
                    c.get_region(0, [[5, 5]])
                assert c.ping()  # connection survives remote errors
        finally:
            server.stop()

    def test_wait_step_blocks_until_commit(self, tmp_path):
        frames = _frames((9, 8), 2)
        server = _serve(tmp_path / "s")
        try:
            with ServiceClient(port=server.port) as c:
                c.put_step(frames[0])
                assert not c.wait_step(1, timeout=0.05)

                def later():
                    with ServiceClient(port=server.port) as c2:
                        c2.put_step(frames[1])

                t = threading.Timer(0.15, later)
                t.start()
                try:
                    got = c.get_step(1, wait=5.0)
                finally:
                    t.join()
                assert np.allclose(got, frames[1])
        finally:
            server.stop()

    def test_busy_shedding_under_load(self, tmp_path):
        frames = _frames((9, 8), 1)
        server = _serve(tmp_path / "s", conn_inflight=2)
        try:

            async def run():
                async with AsyncServiceClient(port=server.port) as c:
                    await c.put_step(frames[0])
                    # two slow ops occupy the connection's inflight slots
                    slow = [
                        asyncio.ensure_future(c.wait_step(99, timeout=1.0))
                        for _ in range(2)
                    ]
                    await asyncio.sleep(0.1)
                    with pytest.raises(BusyError):
                        await c.ping()
                    done = await asyncio.gather(*slow)
                    assert done == [False, False]
                    assert await c.ping()  # slots free again
                    return await c.stats()

            stats = asyncio.run(run())
            assert stats["shed"] >= 1
        finally:
            server.stop()

    def test_sync_client_retries_through_busy(self, tmp_path):
        frames = _frames((9, 8), 1)
        server = _serve(tmp_path / "s", conn_inflight=1)
        try:
            with ServiceClient(port=server.port) as blocker_owner:
                blocker_owner.put_step(frames[0])

            async def run():
                async with AsyncServiceClient(port=server.port) as a:
                    blocker = asyncio.ensure_future(a.wait_step(99, timeout=0.8))
                    await asyncio.sleep(0.05)
                    # the busy replies are absorbed by the sync client's
                    # backoff loop; the request eventually lands
                    def sync_ping():
                        with ServiceClient(
                            port=server.port, busy_retries=50, busy_delay=0.02
                        ) as c:
                            return c.ping()

                    ok = await asyncio.to_thread(sync_ping)
                    await blocker
                    return ok

            assert asyncio.run(run())
        finally:
            server.stop()

    def test_coalescing_under_concurrency(self, tmp_path):
        frames = _frames((17, 16), 1)
        # cache off isolates the batcher: repeats cannot be cache hits
        server = _serve(tmp_path / "s", cache_bytes=0)
        try:

            async def run():
                async with AsyncServiceClient(port=server.port) as c:
                    await c.put_step(frames[0])
                    outs = await asyncio.gather(*[c.get_step(0) for _ in range(12)])
                    return outs, await c.stats()

            outs, stats = asyncio.run(run())
            for o in outs:
                assert np.allclose(o, frames[0])
            assert stats["batcher"]["joined"] > 0
            assert stats["cache"]["hits"] == 0
        finally:
            server.stop()

    def test_cache_hits_across_sequential_requests(self, tmp_path):
        frames = _frames((17, 16), 2)
        server = _serve(tmp_path / "s")
        try:
            with ServiceClient(port=server.port) as c:
                for f in frames:
                    c.put_step(f)
                for _ in range(5):
                    c.get_step(1)
                stats = c.stats()
                assert stats["cache"]["hits"] >= 4
                assert stats["cache"]["hit_rate"] > 0.5
        finally:
            server.stop()

    def test_wire_garbage_gets_error_reply_then_close(self, tmp_path):
        server = _serve(tmp_path / "s")
        try:
            with socket.create_connection(("127.0.0.1", server.port), 5) as s:
                s.sendall(b"GET / HTTP/1.1\r\n\r\n")
                header, _ = protocol.recv_frame_into(s)
                assert header["status"] == "error"
                assert "protocol" in header["error"]
                # server hangs up after a poisoned byte stream
                assert s.recv(1) == b""
        finally:
            server.stop()

    def test_oversized_body_declaration_rejected(self, tmp_path):
        server = _serve(tmp_path / "s", max_body=1024)
        try:
            with socket.create_connection(("127.0.0.1", server.port), 5) as s:
                s.sendall(protocol.frame_prefix({"op": "put_step"}, 1 << 20))
                header, _ = protocol.recv_frame_into(s)
                assert header["status"] == "error"
        finally:
            server.stop()


class TestFollowStream:
    def test_follows_live_writer_with_backoff(self, tmp_path):
        shape = (9, 8)
        frames = _frames(shape, 5)
        root = tmp_path / "s"
        w = StepStreamWriter(root, shape)
        w.append(frames[0])

        def produce():
            for f in frames[1:]:
                time.sleep(0.04)
                w.append(f)

        t = threading.Thread(target=produce)
        t.start()
        try:
            seen = list(follow_stream(root, stop=5, timeout=10.0))
        finally:
            t.join()
        assert [s for s, _ in seen] == [0, 1, 2, 3, 4]
        for s, field in seen:
            assert np.allclose(field, frames[s])

    def test_timeout_ends_iteration(self, tmp_path):
        w = StepStreamWriter(tmp_path / "s", (9, 8))
        w.append(_frames((9, 8), 1)[0])
        seen = list(follow_stream(tmp_path / "s", timeout=0.08))
        assert len(seen) == 1  # step 0, then the wait for step 1 times out


class TestChaosKillReconnect:
    def test_sigkill_reconnect_converge(self):
        rec = _chaos_case((9, 8))
        assert rec["pre_kill_read_ok"]
        assert rec["read_after_kill_ok"]
        assert rec["converged"]
        assert rec["reconnects"] >= 1
        assert rec["steps_after"] == 6


# ----------------------------------------------------------------------
# executor submit() seam


class TestExecutorSubmit:
    def test_serial_submit_resolves_inline(self):
        from repro.parallel.executors import SerialExecutor

        fut = SerialExecutor().submit(lambda a, b: a + b, 2, 3)
        assert fut.done() and fut.result() == 5

    def test_thread_submit(self):
        from repro.parallel.executors import ThreadExecutor

        ex = ThreadExecutor(2)
        try:
            assert ex.submit(sum, (1, 2, 3)).result(5) == 6
        finally:
            ex.shutdown()

    def test_process_submit_unpicklable_falls_back_inline(self):
        from repro.parallel.executors import ProcessExecutor

        ex = ProcessExecutor(max_workers=2)
        try:
            fut = ex.submit(lambda: 41 + 1)  # lambdas don't pickle
            assert fut.result(5) == 42
        finally:
            ex.shutdown()
