"""Tests for coefficient-class extraction, assembly, progressive recovery."""

import numpy as np
import pytest

from repro.core.classes import (
    CoefficientClasses,
    assemble_from_classes,
    class_sizes,
    detail_mask,
    extract_classes,
    num_classes,
    reconstruct_from_classes,
)
from repro.core.decompose import decompose
from repro.core.grid import TensorHierarchy
from repro.core.refactor import Refactorer
from repro.workloads.synthetic import smooth


class TestMasksAndSizes:
    def test_detail_mask_counts(self):
        h = TensorHierarchy.from_shape((9, 9))
        m = detail_mask(h, h.L)
        assert m.sum() == 81 - 25

    def test_mask_false_exactly_at_coarse(self):
        h = TensorHierarchy.from_shape((9,))
        m = detail_mask(h, h.L)
        np.testing.assert_array_equal(m, [False, True] * 4 + [False])

    def test_class_sizes_sum_to_total(self, any_shape):
        h = TensorHierarchy.from_shape(any_shape)
        sizes = class_sizes(h)
        assert len(sizes) == num_classes(h)
        assert sum(sizes) == int(np.prod(any_shape))

    def test_class_sizes_grow_geometrically_dyadic(self):
        h = TensorHierarchy.from_shape((65, 65))
        sizes = class_sizes(h)
        # detail classes grow ~4x per level in 2D
        for a, b in zip(sizes[1:-1], sizes[2:]):
            assert 2.5 < b / a < 4.5

    def test_mask_level_range(self):
        h = TensorHierarchy.from_shape((9,))
        with pytest.raises(ValueError):
            detail_mask(h, 0)


class TestExtractAssemble:
    def test_roundtrip(self, rng, any_shape):
        h = TensorHierarchy.from_shape(any_shape)
        ref = decompose(rng.standard_normal(any_shape), h)
        classes = extract_classes(ref, h)
        back = assemble_from_classes(classes, h)
        np.testing.assert_array_equal(back, ref)

    def test_prefix_assembly_zero_fills(self, rng):
        h = TensorHierarchy.from_shape((17, 17))
        ref = decompose(rng.standard_normal((17, 17)), h)
        classes = extract_classes(ref, h)
        partial = assemble_from_classes(classes[:2], h)
        # coarsest nodes present
        mesh = np.ix_(*h.level_indices(0))
        np.testing.assert_array_equal(partial[mesh], ref[mesh])
        # finest details zero
        assert np.count_nonzero(partial) <= sum(c.size for c in classes[:2])

    def test_wrong_class_size_rejected(self, rng):
        h = TensorHierarchy.from_shape((9, 9))
        ref = decompose(rng.standard_normal((9, 9)), h)
        classes = extract_classes(ref, h)
        classes[1] = classes[1][:-1]
        with pytest.raises(ValueError):
            assemble_from_classes(classes, h)

    def test_too_many_classes_rejected(self):
        h = TensorHierarchy.from_shape((9,))
        with pytest.raises(ValueError):
            assemble_from_classes([np.zeros(2)] * 10, h)

    def test_none_classes_treated_as_zero(self, rng):
        h = TensorHierarchy.from_shape((9, 9))
        ref = decompose(rng.standard_normal((9, 9)), h)
        classes = extract_classes(ref, h)
        with_none = [classes[0], None, classes[2]]
        out = assemble_from_classes(with_none, h)
        zeroed = [classes[0], np.zeros_like(classes[1]), classes[2]]
        np.testing.assert_array_equal(out, assemble_from_classes(zeroed, h))


class TestProgressive:
    def test_full_prefix_is_lossless(self, rng, any_shape):
        r = Refactorer(any_shape)
        data = rng.standard_normal(any_shape)
        cc = r.refactor(data)
        np.testing.assert_allclose(cc.reconstruct(), data, atol=1e-9)

    def test_error_monotone_for_smooth_data(self):
        shape = (65, 65)
        data = smooth(shape)
        cc = Refactorer(shape).refactor(data)
        errs = [
            np.abs(cc.reconstruct(k) - data).max() for k in range(1, cc.n_classes + 1)
        ]
        # broadly decreasing (small transients allowed at coarse prefixes
        # where L-inf error of partial interpolants can wobble)...
        for a, b in zip(errs[:-1], errs[1:]):
            assert b <= a * 1.7
        # ...and strongly decreasing overall
        assert errs[-2] < errs[0] / 20
        assert errs[-1] < 1e-9

    def test_error_decays_fast_for_smooth_data(self):
        shape = (129,)
        x = np.linspace(0, 1, 129)
        data = np.sin(2 * np.pi * x)
        cc = Refactorer(shape).refactor(data)
        errs = [np.abs(cc.reconstruct(k) - data).max() for k in range(1, cc.n_classes)]
        # O(h^2): each added class should cut the error by ~4 once resolved
        ratios = [b / a for a, b in zip(errs[2:-1], errs[3:])]
        assert np.median(ratios) < 0.35

    def test_k_validation(self, rng):
        cc = Refactorer((9, 9)).refactor(rng.standard_normal((9, 9)))
        with pytest.raises(ValueError):
            cc.reconstruct(0)
        with pytest.raises(ValueError):
            cc.reconstruct(cc.n_classes + 1)

    def test_reconstruct_from_classes_function(self, rng):
        h = TensorHierarchy.from_shape((17,))
        data = rng.standard_normal(17)
        classes = extract_classes(decompose(data, h), h)
        np.testing.assert_allclose(reconstruct_from_classes(classes, h), data, atol=1e-10)


class TestCoefficientClassesContainer:
    def test_validates_sizes(self):
        h = TensorHierarchy.from_shape((9,))
        with pytest.raises(ValueError):
            CoefficientClasses(h, [np.zeros(3)])
        with pytest.raises(ValueError):
            CoefficientClasses(h, [np.zeros(2), np.zeros(1), np.zeros(4), np.zeros(9)])

    def test_nbytes_and_cumulative(self, rng):
        cc = Refactorer((17, 17)).refactor(rng.standard_normal((17, 17)))
        total = cc.nbytes()
        assert total == 17 * 17 * 8
        cum = cc.cumulative_bytes()
        assert cum[-1] == total
        assert all(a < b for a, b in zip(cum[:-1], cum[1:]))
        assert cc.nbytes(0) == cc.classes[0].nbytes
