"""Tests for memory accounting, the analytic model, and stream scheduling."""

import numpy as np
import pytest

from repro.core.decompose import decompose, recompose
from repro.core.grid import TensorHierarchy
from repro.gpu.analytic import model_pass, model_pass_shape
from repro.gpu.device import POWER9_CORE, V100
from repro.gpu.memory import MemoryTracker, refactoring_footprint
from repro.gpu.streams import StreamScheduler, stream_sweep
from repro.kernels.launches import EngineOptions
from repro.kernels.metered import CPU_BASELINE_OPTIONS, CpuRefEngine, GpuSimEngine


class TestMemoryTracker:
    def test_alloc_free_peak(self):
        t = MemoryTracker()
        t.alloc("a", 100)
        t.alloc("b", 50)
        assert t.current == 150 and t.peak == 150
        t.free("a")
        t.alloc("c", 10)
        assert t.current == 60 and t.peak == 150
        assert t.total_allocated == 160

    def test_capacity_enforced(self):
        t = MemoryTracker(capacity_bytes=100)
        t.alloc("a", 90)
        with pytest.raises(MemoryError):
            t.alloc("b", 20)

    def test_duplicate_name_rejected(self):
        t = MemoryTracker()
        t.alloc("a", 1)
        with pytest.raises(ValueError):
            t.alloc("a", 1)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            MemoryTracker().alloc("a", -1)

    def test_reset(self):
        t = MemoryTracker()
        t.alloc("a", 10)
        t.reset()
        assert t.current == 0 and t.peak == 0 and not t.live_allocations()


class TestFootprint:
    @pytest.mark.parametrize(
        "shape,paper_pct",
        [
            ((33, 33), 6.06),
            ((65, 65), 3.08),
            ((513, 513), 0.39),
            ((8193, 8193), 0.02),
            ((33, 33, 33), 0.28),
        ],
    )
    def test_extra_footprint_matches_paper_table5(self, shape, paper_pct):
        fp = refactoring_footprint(TensorHierarchy.from_shape(shape))
        assert 100 * fp.extra_fraction == pytest.approx(paper_pct, abs=0.02)

    def test_513_cubed_in_permille(self):
        fp = refactoring_footprint(TensorHierarchy.from_shape((513, 513, 513)))
        # paper: 0.01 per-mille
        assert 1000 * fp.extra_fraction == pytest.approx(0.0114, abs=0.001)

    def test_totals(self):
        fp = refactoring_footprint(TensorHierarchy.from_shape((9, 9)))
        assert fp.cpu_total == 2 * 81 * 8
        assert fp.gpu_total == fp.cpu_total + 2 * 18 * 8


class TestAnalyticModel:
    @pytest.mark.parametrize("shape", [(33, 17), (9, 9, 9), (65,)])
    @pytest.mark.parametrize("operation", ["decompose", "recompose"])
    def test_matches_metered_gpu_clock(self, shape, operation, rng):
        h = TensorHierarchy.from_shape(shape)
        eng = GpuSimEngine()
        data = rng.standard_normal(shape)
        ref = decompose(data, h)
        eng.reset()
        if operation == "decompose":
            decompose(data, h, eng)
        else:
            recompose(ref, h, eng)
        mp = model_pass(h, V100, eng.opts, operation)
        assert mp.total_seconds == pytest.approx(eng.clock, rel=1e-12)
        for cat, t in mp.category_seconds.items():
            assert t == pytest.approx(eng.category_seconds[cat], rel=1e-12)

    def test_matches_metered_cpu_clock(self, rng):
        h = TensorHierarchy.from_shape((33, 17))
        eng = CpuRefEngine()
        decompose(rng.standard_normal((33, 17)), h, eng)
        mp = model_pass(h, POWER9_CORE, CPU_BASELINE_OPTIONS, "decompose")
        assert mp.total_seconds == pytest.approx(eng.clock, rel=1e-12)

    def test_throughput_property(self):
        mp = model_pass_shape((1025, 1025), V100)
        assert mp.throughput_gbps == pytest.approx(
            1025 * 1025 * 8 / mp.total_seconds / 1e9
        )

    def test_gpu_beats_cpu_at_scale(self):
        t_gpu = model_pass_shape((4097, 4097), V100).total_seconds
        t_cpu = model_pass_shape(
            (4097, 4097), POWER9_CORE, CPU_BASELINE_OPTIONS
        ).total_seconds
        assert t_cpu / t_gpu > 50

    def test_cpu_beats_gpu_on_tiny_grids(self):
        t_gpu = model_pass_shape((33, 33), V100).total_seconds
        t_cpu = model_pass_shape((33, 33), POWER9_CORE, CPU_BASELINE_OPTIONS).total_seconds
        assert t_cpu < t_gpu  # the paper's Table V crossover

    def test_rejects_unknown_hardware(self):
        with pytest.raises(TypeError):
            model_pass_shape((9, 9), hardware="gpu")


class TestStreams:
    def test_scheduler_equal_tasks_waves(self):
        s = StreamScheduler(4)
        assert s.makespan([1.0] * 8) == pytest.approx(2.0)
        assert s.makespan([1.0] * 9) == pytest.approx(3.0)

    def test_scheduler_empty(self):
        assert StreamScheduler(4).makespan([]) == 0.0

    def test_scheduler_single_stream_serializes(self):
        assert StreamScheduler(1).makespan([0.5, 1.5, 1.0]) == pytest.approx(3.0)

    def test_timeline_consistent(self):
        s = StreamScheduler(2)
        tl = s.timeline([1.0, 1.0, 1.0])
        assert tl[0][1] == 0.0 and tl[1][1] == 0.0 and tl[2][1] == 1.0

    def test_invalid_streams(self):
        with pytest.raises(ValueError):
            StreamScheduler(0)

    def test_sweep_monotone_then_plateau(self):
        pts = stream_sweep((129, 129, 129), V100)
        speedups = [p.speedup for p in pts]
        assert speedups[0] == 1.0
        assert all(b >= a - 1e-9 for a, b in zip(speedups[:-1], speedups[1:]))
        # plateau at the device's concurrency cap (8)
        by_n = {p.n_streams: p.speedup for p in pts}
        assert by_n[16] == pytest.approx(by_n[8])
        assert by_n[8] > 1.5

    def test_sweep_matches_paper_shape_at_513(self):
        pts = {p.n_streams: p.speedup for p in stream_sweep((513, 513, 513), V100)}
        # paper: 2.6x (decompose) with 8 streams; we land in [2, 4.5]
        assert 2.0 < pts[8] < 4.5
