"""Repository quality gates: docs consistency, docstring coverage, workloads.

Not algorithm tests — invariants about the repo itself, so documentation
and public API cannot silently drift from the code.
"""

import inspect
import pathlib

import numpy as np
import pytest

import repro
import repro.analysis as analysis
import repro.cluster as cluster
import repro.compress as compress
import repro.core as core
import repro.experiments as experiments
import repro.gpu as gpu
import repro.io as io_pkg
import repro.kernels as kernels
import repro.workloads as workloads
from repro.cli import EXPERIMENTS

REPO = pathlib.Path(__file__).resolve().parent.parent


class TestDocsConsistency:
    def test_every_cli_experiment_in_readme_or_experiments_md(self):
        text = (REPO / "README.md").read_text() + (REPO / "EXPERIMENTS.md").read_text()
        for name in EXPERIMENTS:
            if name in ("lifecycle",):
                continue  # extension experiments live in docs/
            assert name in text, f"experiment {name!r} undocumented"

    def test_design_md_names_the_right_paper(self):
        text = (REPO / "DESIGN.md").read_text()
        assert "Accelerating Multigrid-based Hierarchical Scientific Data" in text
        assert "2007.04457" in text

    def test_examples_listed_in_readme_exist_and_vice_versa(self):
        readme = (REPO / "README.md").read_text()
        on_disk = {p.name for p in (REPO / "examples").glob("*.py")}
        listed = {
            line.split("`")[1].split("/")[-1]
            for line in readme.splitlines()
            if line.startswith("| `examples/")
        }
        assert listed <= on_disk, f"listed but missing: {listed - on_disk}"
        # every example on disk should be runnable documentation; allow at
        # most one unlisted scratch script
        assert len(on_disk - listed) <= 1, f"undocumented examples: {on_disk - listed}"

    def test_benchmarks_cover_every_paper_artifact(self):
        bench_names = {p.name for p in (REPO / "benchmarks").glob("bench_*.py")}
        for artifact in ("fig7", "table2", "table3", "table4", "table5",
                         "table6", "fig8", "fig9", "fig10", "fig11"):
            assert any(artifact in b for b in bench_names), artifact


class TestDocstringCoverage:
    @pytest.mark.parametrize(
        "module",
        [repro, core, gpu, kernels, cluster, compress, io_pkg, workloads,
         analysis, experiments],
        ids=lambda m: m.__name__,
    )
    def test_public_api_documented(self, module):
        missing = []
        for name in getattr(module, "__all__", []):
            obj = getattr(module, name)
            if inspect.ismodule(obj) or isinstance(obj, (int, float, str, tuple, dict)):
                continue
            if not inspect.getdoc(obj):
                missing.append(f"{module.__name__}.{name}")
        assert not missing, f"undocumented public API: {missing}"

    def test_all_exports_resolve(self):
        for module in (core, gpu, kernels, cluster, compress, io_pkg,
                       workloads, analysis, experiments):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name}"


class TestTurbulenceWorkload:
    def test_spectral_slope(self):
        from repro.analysis import radial_power_spectrum
        from repro.workloads import turbulence

        f = turbulence((128, 128), slope=-5.0 / 3.0)
        k, p = radial_power_spectrum(f, n_bins=32)
        mask = (k > 3) & (k < 40) & (p > 0)
        slope = np.polyfit(np.log(k[mask]), np.log(p[mask]), 1)[0]
        assert slope == pytest.approx(-5.0 / 3.0, abs=0.4)

    def test_normalized(self):
        from repro.workloads import turbulence

        f = turbulence((64, 64))
        assert abs(f.mean()) < 1e-10
        assert f.std() == pytest.approx(1.0)

    def test_sits_between_smooth_and_noise_in_compressibility(self):
        from repro.compress.mgard import MgardCompressor
        from repro.core.grid import TensorHierarchy
        from repro.workloads import smooth, turbulence, white_noise

        shape = (65, 65)
        hier = TensorHierarchy.from_shape(shape)
        tol = 1e-2

        def ratio(d):
            span = float(d.max() - d.min())
            return MgardCompressor(hier, tol * span).compress(d).compression_ratio()

        r_smooth = ratio(smooth(shape))
        r_turb = ratio(turbulence(shape))
        r_noise = ratio(white_noise(shape))
        assert r_smooth > r_turb > r_noise

    def test_roundtrip(self, rng):
        from repro.core.refactor import Refactorer
        from repro.workloads import turbulence

        data = turbulence((33, 33, 33))
        r = Refactorer(data.shape)
        np.testing.assert_allclose(r.recompose(r.decompose(data)), data, atol=1e-9)
