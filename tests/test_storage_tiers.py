"""The executed storage tier: bytes on disk behind the placement policy."""

import io
import json

import numpy as np
import pytest

from repro import faults
from repro.core.refactor import Refactorer
from repro.io import (
    LocalTierStore,
    StepStreamReader,
    StepStreamWriter,
    StorageError,
    container_extents,
    write_sharded_stream,
)
from repro.io.container import write_refactored_stream
from repro.io.storage import ALPINE_PFS, ARCHIVE_TIER, NVME_TIER


@pytest.fixture
def store(tmp_path):
    return LocalTierStore(
        tmp_path / "tiers",
        tiers=[NVME_TIER, ALPINE_PFS, ARCHIVE_TIER],
        tier_budget_bytes=[8192, 100_000, None],
    )


# ----------------------------------------------------------------------
# object layer


def test_put_get_roundtrip_and_tier_dirs(store):
    assert store.put("a/b", b"hello") == 0
    assert store.get("a/b") == b"hello"
    assert store.tier_of("a/b") == 0
    path = store.root / "tier0_node-local-nvme" / "a" / "b"
    assert path.read_bytes() == b"hello"


def test_budget_full_spills_to_next_tier(store):
    assert store.put("fits", b"x" * 8000) == 0
    assert store.put("spills", b"y" * 500) == 1  # tier 0 has 192 B left
    assert store.get("spills") == b"y" * 500
    assert store.used_bytes(0) == 8000 and store.used_bytes(1) == 500


def test_no_spill_raises(store):
    store.put("fits", b"x" * 8000)
    with pytest.raises(StorageError, match="budget"):
        store.put("wont", b"y" * 500, spill=False)


def test_replacing_a_key_reclaims_its_budget(store):
    store.put("k", b"x" * 8000)
    assert store.put("k", b"y" * 100) == 0  # old bytes released first
    assert store.used_bytes(0) == 100


def test_corruption_detected_on_get(store):
    store.put("k", b"payload")
    (store.root / "tier0_node-local-nvme" / "k").write_bytes(b"tampered")
    with pytest.raises(StorageError, match="corrupt"):
        store.get("k")


def test_missing_key_and_key_escape(store):
    with pytest.raises(StorageError, match="no object"):
        store.get("ghost")
    with pytest.raises(StorageError, match="no object"):
        store.tier_of("ghost")
    with pytest.raises(StorageError, match="escapes"):
        store.put("../../evil", b"x")


def test_index_survives_reopen(store, tmp_path):
    store.put("persist", b"z" * 100, tier=1)
    reopened = LocalTierStore(
        tmp_path / "tiers",
        tiers=[NVME_TIER, ALPINE_PFS, ARCHIVE_TIER],
        tier_budget_bytes=[8192, 100_000, None],
    )
    assert reopened.get("persist") == b"z" * 100
    assert reopened.tier_of("persist") == 1


def test_delete_removes_object_and_budget(store):
    store.put("k", b"x" * 100)
    store.delete("k")
    assert store.used_bytes(0) == 0
    with pytest.raises(StorageError):
        store.get("k")
    store.delete("k")  # idempotent


def test_put_fault_site(store):
    with faults.inject("error@storage.tier.put:count=1", seed=1):
        with pytest.raises(faults.InjectedFault):
            store.put("k", b"x")
    store.put("k", b"x")  # plan exhausted: next put succeeds


# ----------------------------------------------------------------------
# container dissection


def test_container_extents_sharded():
    payloads = [b"a" * 100, b"b" * 200, b"c" * 50]
    buf = io.BytesIO()
    write_sharded_stream(buf, (30, 8), "refactored", [(0, 10), (10, 20), (20, 30)], payloads)
    blob = buf.getvalue()
    start, extents = container_extents(blob)
    assert [e["name"] for e in extents] == ["shard 0", "shard 1", "shard 2"]
    assert [e["nbytes"] for e in extents] == [100, 200, 50]
    # extents tile the payload exactly
    rebuilt = blob[:start] + b"".join(
        blob[start + e["offset"] : start + e["offset"] + e["nbytes"]] for e in extents
    )
    assert rebuilt == blob


def test_container_extents_refactored():
    cc = Refactorer((17, 17)).refactor(np.random.default_rng(0).random((17, 17)))
    buf = io.BytesIO()
    write_refactored_stream(buf, cc)
    start, extents = container_extents(buf.getvalue())
    assert len(extents) == cc.n_classes
    assert all(e["name"].startswith("class ") for e in extents)
    assert start + sum(e["nbytes"] for e in extents) == len(buf.getvalue())


def test_container_extents_opaque():
    start, extents = container_extents(b"not a container at all")
    assert start == 0
    assert extents == [{"name": "payload", "offset": 0, "nbytes": 22}]


# ----------------------------------------------------------------------
# executed placement


def test_place_container_roundtrips_byte_identical(store):
    payloads = [bytes([i]) * 3000 for i in range(3)]
    buf = io.BytesIO()
    write_sharded_stream(buf, (30, 8), "refactored", [(0, 10), (10, 20), (20, 30)], payloads)
    blob = buf.getvalue()
    record = store.place_container("steps/s0", blob)
    # coarse shards stay fast, the tail spills (8 KB tier-0 budget)
    tiers = [e["tier"] for e in record["extents"]]
    assert tiers[0] == 0 and tiers[-1] >= 1
    assert store.read_container("steps/s0") == blob
    assert store.container_record("steps/s0")["extents"] == record["extents"]


def test_place_container_unbudgeted_stays_fast(tmp_path):
    unbounded = LocalTierStore(tmp_path / "u", tiers=[NVME_TIER, ALPINE_PFS])
    blob = b"opaque blob " * 1000
    unbounded.place_container("k", blob)
    assert unbounded.read_container("k") == blob
    assert all(e["tier"] == 0 for e in unbounded.container_record("k")["extents"])


def test_read_container_unknown_key(store):
    with pytest.raises(StorageError, match="no placed container"):
        store.read_container("ghost")


# ----------------------------------------------------------------------
# stream integration: commits move real bytes through tiers


def test_stream_commit_places_steps_through_tiers(tmp_path):
    store = LocalTierStore(
        tmp_path / "tiers",
        tiers=[NVME_TIER, ALPINE_PFS],
        tier_budget_bytes=[40_000, None],
    )
    rng = np.random.default_rng(5)
    frames = [rng.random((48, 32)) for _ in range(3)]
    writer = StepStreamWriter(tmp_path / "stream", (48, 32), shards=3, tier_store=store)
    for f in frames:
        writer.append(f)

    manifest = json.loads((tmp_path / "stream" / "manifest.json").read_text())
    placed_tiers = set()
    for step in manifest["steps"]:
        assert "tiers" in step
        placed_tiers.update(t for _, t in step["tiers"]["extents"])
        canonical = (tmp_path / "stream" / step["file"]).read_bytes()
        assert store.read_container(f"steps/{step['file']}") == canonical
    assert placed_tiers == {0, 1}  # the 40 KB fast tier filled and spilled
    assert store.used_bytes() > 0

    # the canonical stream stays fully readable alongside the tier copy
    reader = StepStreamReader(tmp_path / "stream")
    for i, f in enumerate(frames):
        assert np.allclose(reader.read_step(i), f)


def test_stream_without_tier_store_writes_no_tier_entries(tmp_path):
    writer = StepStreamWriter(tmp_path / "stream", (16, 16))
    writer.append(np.zeros((16, 16)))
    manifest = json.loads((tmp_path / "stream" / "manifest.json").read_text())
    assert "tiers" not in manifest["steps"][0]
