"""Tests for the data-lifecycle simulation (the intro's 90-day story)."""

import pytest

from repro.core.classes import num_classes
from repro.core.grid import TensorHierarchy
from repro.io.lifecycle import (
    AnalysisRequest,
    simulate_lifecycle,
    typical_request_trace,
)

SHAPE = (129, 129, 129)
N_CLASSES = num_classes(TensorHierarchy.from_shape(SHAPE))


class TestTrace:
    def test_trace_shape(self):
        trace = typical_request_trace(5, 100, N_CLASSES)
        assert len(trace) == 100
        assert all(1 <= r.classes_needed <= N_CLASSES for r in trace)
        assert all(0 <= r.dataset < 5 for r in trace)

    def test_coarse_bias(self):
        trace = typical_request_trace(5, 500, N_CLASSES, coarse_bias=3.0)
        coarse = sum(1 for r in trace if r.classes_needed <= N_CLASSES // 2)
        assert coarse > 350  # most analyses are coarse

    def test_deterministic(self):
        a = typical_request_trace(3, 50, N_CLASSES, seed=1)
        b = typical_request_trace(3, 50, N_CLASSES, seed=1)
        assert a == b


class TestSimulation:
    def test_refactoring_aware_wins(self):
        trace = typical_request_trace(8, 150, N_CLASSES)
        out = simulate_lifecycle(SHAPE, trace, keep_fraction=0.02)
        base = out["baseline"]
        aware = out["refactoring-aware"]
        assert aware.total_seconds < 0.3 * base.total_seconds
        assert aware.archive_hits < base.archive_hits
        assert aware.pfs_only_fraction > 0.5

    def test_baseline_always_hits_archive(self):
        trace = typical_request_trace(2, 20, N_CLASSES)
        out = simulate_lifecycle(SHAPE, trace)
        assert out["baseline"].archive_hits == 20
        assert out["baseline"].pfs_only_fraction == 0.0

    def test_full_accuracy_requests_still_pay(self):
        trace = [AnalysisRequest(dataset=0, classes_needed=N_CLASSES)] * 5
        out = simulate_lifecycle(SHAPE, trace, keep_fraction=0.02)
        assert out["refactoring-aware"].archive_hits == 5

    def test_bigger_hot_budget_helps(self):
        trace = typical_request_trace(4, 100, N_CLASSES)
        small = simulate_lifecycle(SHAPE, trace, keep_fraction=0.005)
        big = simulate_lifecycle(SHAPE, trace, keep_fraction=0.3)
        assert (
            big["refactoring-aware"].pfs_only_requests
            >= small["refactoring-aware"].pfs_only_requests
        )
        assert (
            big["refactoring-aware"].total_seconds
            <= small["refactoring-aware"].total_seconds
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_lifecycle(SHAPE, [], keep_fraction=0.0)
        with pytest.raises(ValueError):
            simulate_lifecycle(
                SHAPE, [AnalysisRequest(dataset=0, classes_needed=99)]
            )
