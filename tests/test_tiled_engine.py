"""Tests for TiledEngine: Algorithm 3 through the literal paper kernels."""

import numpy as np
import pytest

from repro.core.decompose import decompose, recompose
from repro.core.grid import TensorHierarchy
from repro.kernels.tiled_engine import TiledEngine


@pytest.mark.parametrize(
    "shape", [(17,), (17, 13), (9, 9, 9), (16, 7), (12, 5, 6), (33, 9)],
    ids=lambda s: "x".join(map(str, s)),
)
def test_full_pipeline_matches_reference(shape, rng):
    h = TensorHierarchy.from_shape(shape)
    data = rng.standard_normal(shape)
    ref = decompose(data, h)
    eng = TiledEngine(b=2, segment=5)
    np.testing.assert_allclose(decompose(data, h, eng), ref, atol=1e-12)
    np.testing.assert_allclose(
        recompose(ref, h, TiledEngine(b=2, segment=5)), data, atol=1e-9
    )


def test_3d_goes_through_slice_walks(rng):
    h = TensorHierarchy.from_shape((9, 9, 9))
    eng = TiledEngine()
    decompose(rng.standard_normal((9, 9, 9)), h, eng)
    assert eng.slice_launches > 0  # §III-D: 2D kernels reused per slice


def test_2d_uses_no_slice_walks(rng):
    h = TensorHierarchy.from_shape((17, 17))
    eng = TiledEngine()
    decompose(rng.standard_normal((17, 17)), h, eng)
    assert eng.slice_launches == 0


@pytest.mark.parametrize("b,segment", [(1, 2), (3, 16), (2, 64)])
def test_tile_and_segment_sizes_are_free_parameters(b, segment, rng):
    h = TensorHierarchy.from_shape((17, 13))
    data = rng.standard_normal((17, 13))
    ref = decompose(data, h)
    out = decompose(data, h, TiledEngine(b=b, segment=segment))
    np.testing.assert_allclose(out, ref, atol=1e-12)


def test_nonuniform_grid(rng):
    from conftest import nonuniform_coords

    shape = (17, 9)
    h = TensorHierarchy.from_shape(shape, nonuniform_coords(shape, rng))
    data = rng.standard_normal(shape)
    out = decompose(data, h, TiledEngine(b=2, segment=4))
    np.testing.assert_allclose(out, decompose(data, h), atol=1e-11)
