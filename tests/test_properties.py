"""Property-based tests (hypothesis) of the core invariants.

These probe the algebraic guarantees over randomized shapes, coordinate
spacings, and data — the invariants DESIGN.md §6 commits to.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compress.huffman import huffman_decode, huffman_encode
from repro.compress.quantizer import Quantizer
from repro.core.classes import class_sizes, extract_classes, assemble_from_classes
from repro.core.coefficients import compute_coefficients
from repro.core.correction import compute_correction
from repro.core.decompose import decompose, recompose
from repro.core.grid import TensorHierarchy
from repro.core.refactor import Refactorer

# -- strategies -----------------------------------------------------------

dims = st.integers(min_value=1, max_value=3)


@st.composite
def shapes(draw):
    d = draw(dims)
    return tuple(draw(st.integers(min_value=2, max_value=20)) for _ in range(d))


@st.composite
def shaped_data(draw):
    shape = draw(shapes())
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    return rng.standard_normal(shape)


@st.composite
def shaped_data_with_coords(draw):
    data = draw(shaped_data())
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    coords = []
    for n in data.shape:
        if n == 1:
            coords.append(np.zeros(1))
        else:
            steps = rng.uniform(0.05, 1.0, size=n - 1)
            x = np.concatenate([[0.0], np.cumsum(steps)])
            coords.append(x)
    return data, tuple(coords)


# -- core invariants ---------------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(shaped_data())
def test_roundtrip_lossless_any_shape(data):
    h = TensorHierarchy.from_shape(data.shape)
    rt = recompose(decompose(data, h), h)
    assert np.abs(rt - data).max() < 1e-8 * max(1.0, np.abs(data).max())


@settings(max_examples=40, deadline=None)
@given(shaped_data_with_coords())
def test_roundtrip_lossless_nonuniform(data_coords):
    data, coords = data_coords
    h = TensorHierarchy.from_shape(data.shape, coords)
    rt = recompose(decompose(data, h), h)
    assert np.abs(rt - data).max() < 1e-8 * max(1.0, np.abs(data).max())


@settings(max_examples=40, deadline=None)
@given(shaped_data())
def test_class_split_is_a_partition(data):
    h = TensorHierarchy.from_shape(data.shape)
    ref = decompose(data, h)
    classes = extract_classes(ref, h)
    assert [c.size for c in classes] == class_sizes(h)
    assert sum(c.size for c in classes) == data.size
    back = assemble_from_classes(classes, h)
    np.testing.assert_array_equal(back, ref)


@settings(max_examples=30, deadline=None)
@given(shaped_data(), st.floats(min_value=-3.0, max_value=3.0))
def test_decomposition_is_affine(data, offset):
    """decompose(a*x) = a*decompose(x) and constants ride through exactly:
    the whole pipeline is linear, so shifting by a constant shifts only
    nodal values (constants have zero detail coefficients)."""
    h = TensorHierarchy.from_shape(data.shape)
    ref = decompose(data, h)
    scaled = decompose(2.5 * data, h)
    np.testing.assert_allclose(scaled, 2.5 * ref, rtol=1e-9, atol=1e-9)
    shifted = decompose(data + offset, h)
    rt = recompose(shifted, h)
    np.testing.assert_allclose(rt, data + offset, atol=1e-8)


@settings(max_examples=30, deadline=None)
@given(shapes(), st.integers(min_value=0, max_value=2**31 - 1))
def test_correction_linearity(shape, seed):
    h = TensorHierarchy.from_shape(shape)
    if h.L == 0:
        return
    rng = np.random.default_rng(seed)
    v1 = rng.standard_normal(h.level_shape(h.L))
    v2 = rng.standard_normal(h.level_shape(h.L))
    c1 = compute_coefficients(v1, h, h.L)
    c2 = compute_coefficients(v2, h, h.L)
    z12 = compute_correction(c1 + c2, h, h.L)
    z1 = compute_correction(c1, h, h.L)
    z2 = compute_correction(c2, h, h.L)
    np.testing.assert_allclose(z12, z1 + z2, rtol=1e-8, atol=1e-10)


@settings(max_examples=25, deadline=None)
@given(shaped_data(), st.floats(min_value=1e-6, max_value=1.0))
def test_quantizer_honours_any_tolerance(data, tol):
    if data.ndim > 2 or data.size > 600:
        data = data.ravel()  # keep runtime bounded: quantize as 1D
    r = Refactorer(data.shape)
    cc = r.refactor(data)
    q = Quantizer(tol)
    back = q.dequantize(q.quantize(cc), cc)
    assert np.abs(back.reconstruct() - data).max() <= tol


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.integers(min_value=-(2**62), max_value=2**62), max_size=300),
    st.integers(min_value=4, max_value=64),
)
def test_huffman_roundtrip_any_ints(values, max_table):
    arr = np.asarray(values, dtype=np.int64)
    payload, header = huffman_encode(arr, max_table=max_table)
    np.testing.assert_array_equal(huffman_decode(payload, header), arr)


@settings(max_examples=30, deadline=None)
@given(shaped_data())
def test_progressive_full_reconstruction(data):
    r = Refactorer(data.shape)
    cc = r.refactor(data)
    assert np.abs(cc.reconstruct() - data).max() < 1e-8 * max(1.0, np.abs(data).max())


@settings(max_examples=25, deadline=None)
@given(shapes(), st.integers(0, 2**31 - 1))
def test_adjoint_identity_property(shape, seed):
    """<w, R x> == <R^T w, x> for random shapes and data."""
    from repro.core.adjoint import recompose_adjoint

    rng = np.random.default_rng(seed)
    h = TensorHierarchy.from_shape(shape)
    x = rng.standard_normal(shape)
    w = rng.standard_normal(shape)
    lhs = float(np.sum(w * recompose(x, h)))
    rhs = float(np.sum(recompose_adjoint(w, h) * x))
    assert abs(lhs - rhs) <= 1e-9 * max(abs(lhs), 1.0)


@settings(max_examples=20, deadline=None)
@given(data=shaped_data())
def test_container_roundtrip_property(tmp_path_factory, data):
    """Write/read of any refactored dataset is bit-exact."""
    from repro.core.refactor import Refactorer
    from repro.io.container import RefactoredFileReader, write_refactored

    r = Refactorer(data.shape)
    cc = r.refactor(data)
    path = tmp_path_factory.mktemp("prop") / "x.rprc"
    write_refactored(path, cc)
    back = RefactoredFileReader(path).to_coefficient_classes()
    for a, b in zip(back.classes, cc.classes):
        np.testing.assert_array_equal(a, b)


@settings(max_examples=30, deadline=None)
@given(shaped_data(), st.floats(min_value=0.1, max_value=100.0))
def test_snorm_estimate_scales_linearly(data, scale):
    """Truncation estimates are 1-homogeneous in the data."""
    from repro.core.snorm import truncation_estimate

    r = Refactorer(data.shape)
    cc = r.refactor(data)
    cc_scaled = Refactorer(data.shape).refactor(scale * data)
    for k in range(1, cc.n_classes + 1):
        a = truncation_estimate(cc, k)
        b = truncation_estimate(cc_scaled, k)
        assert b == pytest.approx(scale * a, rel=1e-6, abs=1e-12)


@settings(max_examples=40, deadline=None)
@given(
    st.integers(1, 1 << 24),  # bytes
    st.integers(1, 1 << 20),  # threads
    st.integers(1, 1024),  # stride
)
def test_gpu_time_monotone_in_bytes(nbytes, threads, stride):
    """More traffic never takes less modeled time, all else equal."""
    from repro.gpu.cost import KernelLaunch, gpu_kernel_time
    from repro.gpu.device import V100

    def rec(b):
        return KernelLaunch(
            name="mass", kind="linear", elements=b // 8 + 1,
            bytes_read=b, bytes_written=b, threads=threads, stride=stride,
        )

    t1 = gpu_kernel_time(rec(nbytes), V100)
    t2 = gpu_kernel_time(rec(2 * nbytes), V100)
    assert t2 >= t1
