"""Tests for iso-surface/contour metrics and error metrics."""

import numpy as np
import pytest

from repro.analysis.isosurface import contour_length, feature_accuracy, isosurface_area
from repro.core.errors import l2, linf, psnr, rel_l2, rel_linf


class TestIsosurface:
    def _radial_3d(self, n=49):
        ax = np.linspace(-1, 1, n)
        X, Y, Z = np.meshgrid(ax, ax, ax, indexing="ij")
        return np.sqrt(X**2 + Y**2 + Z**2), (ax, ax, ax)

    def test_sphere_area(self):
        f, coords = self._radial_3d()
        for r in (0.4, 0.7):
            area = isosurface_area(f, r, coords)
            assert area == pytest.approx(4 * np.pi * r * r, rel=0.02)

    def test_plane_area_exact(self):
        n = 17
        ax = np.linspace(0, 1, n)
        f = np.broadcast_to(ax[:, None, None], (n, n, n)).copy()
        area = isosurface_area(f, 0.5, (ax, ax, ax))
        assert area == pytest.approx(1.0, rel=1e-10)

    def test_empty_surface(self):
        f, coords = self._radial_3d(17)
        assert isosurface_area(f, 10.0, coords) == 0.0
        assert isosurface_area(f, -1.0, coords) == 0.0

    def test_area_stable_under_small_perturbation(self, rng):
        f, coords = self._radial_3d(33)
        base = isosurface_area(f, 0.6, coords)
        noisy = isosurface_area(f + 1e-4 * rng.standard_normal(f.shape), 0.6, coords)
        assert abs(noisy - base) / base < 0.02

    def test_default_integer_coords(self):
        n = 9
        f = np.broadcast_to(np.arange(n, dtype=float)[:, None, None], (n, n, n)).copy()
        # plane through an 8x8 cell domain: area (n-1)^2
        assert isosurface_area(f, 4.5) == pytest.approx(64.0, rel=1e-9)

    def test_dimension_validation(self):
        with pytest.raises(ValueError):
            isosurface_area(np.zeros((4, 4)), 0.5)
        with pytest.raises(ValueError):
            contour_length(np.zeros((4, 4, 4)), 0.5)

    def test_circle_length(self):
        n = 65
        ax = np.linspace(-1, 1, n)
        X, Y = np.meshgrid(ax, ax, indexing="ij")
        g = np.sqrt(X**2 + Y**2)
        assert contour_length(g, 0.5, (ax, ax)) == pytest.approx(np.pi, rel=0.02)

    def test_line_length_exact(self):
        n = 17
        ax = np.linspace(0, 1, n)
        f = np.broadcast_to(ax[:, None], (n, n)).copy()
        assert contour_length(f, 0.5, (ax, ax)) == pytest.approx(1.0, rel=1e-10)

    def test_feature_accuracy(self):
        assert feature_accuracy(95.0, 100.0) == pytest.approx(0.95)
        assert feature_accuracy(100.0, 100.0) == 1.0
        assert feature_accuracy(300.0, 100.0) == 0.0  # clamped
        assert feature_accuracy(0.0, 0.0) == 1.0
        assert feature_accuracy(1.0, 0.0) == 0.0


class TestErrorMetrics:
    def test_norms(self, rng):
        a = rng.standard_normal(100)
        b = rng.standard_normal(100)
        assert linf(a, b) == np.abs(a - b).max()
        assert l2(a, b) == pytest.approx(np.linalg.norm(a - b))
        assert linf(np.zeros(0)) == 0.0

    def test_relative_norms(self, rng):
        exact = rng.standard_normal((10, 10)) * 5
        approx = exact + 0.01
        assert rel_linf(approx, exact) == pytest.approx(0.01 / (exact.max() - exact.min()))
        assert rel_l2(approx, exact) < 0.01

    def test_relative_norm_zero_cases(self):
        z = np.zeros((3, 3))
        assert rel_linf(z, z) == 0.0
        assert rel_l2(z + 1, z) == np.inf

    def test_psnr(self, rng):
        exact = rng.random((32, 32))
        assert psnr(exact, exact) == np.inf
        noisy = exact + 1e-3 * rng.standard_normal((32, 32))
        val = psnr(noisy, exact)
        assert 40 < val < 80

    def test_psnr_decreases_with_noise(self, rng):
        exact = rng.random((32, 32))
        small = psnr(exact + 1e-4 * rng.standard_normal((32, 32)), exact)
        big = psnr(exact + 1e-2 * rng.standard_normal((32, 32)), exact)
        assert small > big
