"""Shared helpers for the benchmark harness.

Each ``bench_*`` module does two things:

1. times a *functional* representative of the experiment with
   pytest-benchmark (real NumPy execution on this machine), and
2. regenerates the paper's table/figure through the modeled experiment
   generators and writes it to ``benchmarks/results/<name>.txt`` (also
   echoed to the terminal when running with ``-s``).

``REPRO_BENCH_SCALE=paper`` (the default) prints model tables at the
paper's sizes; the functional timing parts always use CI-friendly sizes
scaled by the same knob.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def report():
    """Callable writing an experiment's text block to results/<name>.txt."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _write(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[written to {path}]")

    return _write


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(2021)
