#!/usr/bin/env python
"""Chaos benchmark: recovery success rate and the latency it costs.

PR 6 added a deterministic fault-injection seam (:mod:`repro.faults`)
and crash-consistent recovery across the streaming stack.  This
benchmark drives :func:`repro.experiments.chaos.chaos_experiment` — the
writer-crash matrix (every commit-path crash site x every stream mode),
corrupt-read degradation, process-pool worker kills, and the fsync
durability tax — and writes ``benchmarks/results/BENCH_chaos.json`` so
the recovery numbers stay machine-readable alongside the perf
trajectory:

* ``crash_matrix.recovery_rate`` must be 1.0 — a cell that fails means
  a crash site leaks corrupt visible state;
* ``corrupt_read`` records exact/degraded/lost read fractions and the
  added latency of quarantine-and-roll-back over a clean sweep;
* ``worker_kill`` records the pool-rebuild retry's added latency (the
  payloads must match the undisturbed encode bit for bit);
* ``durability`` records the per-step fsync overhead.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_chaos.py

``REPRO_BENCH_SCALE=ci`` shrinks the grid for smoke runs.  Exits 1 if
any crash cell fails to recover or a worker-kill encode comes back with
different bytes — the chaos run doubles as a correctness gate.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

from repro.experiments.chaos import chaos_experiment, format_chaos
from repro.parallel import available_workers

RESULTS = Path(__file__).parent / "results"

CI_SCALE = os.environ.get("REPRO_BENCH_SCALE") == "ci"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default=str(RESULTS / "BENCH_chaos.json"))
    args = parser.parse_args(argv)

    rec = chaos_experiment()
    report = {
        "benchmark": "chaos",
        "scale": "ci" if CI_SCALE else "full",
        "cpu_count": available_workers(),
        **rec,
    }

    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2) + "\n")

    print(format_chaos(rec))
    print(f"[written to {out}]")

    failed = [
        f"{c['mode']}/{c['site']}"
        for c in rec["crash_matrix"]["cells"]
        if not c["recovered"]
    ]
    if failed:
        print(f"unrecovered crash cells: {', '.join(failed)}", file=sys.stderr)
        return 1
    if not rec["worker_kill"]["payloads_match"]:
        print("worker-kill encode returned different bytes", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
