"""Table II: kernel-level speedups on the desktop (RTX 2080 Ti vs i7 core).

Functional part: times the four vectorized host kernels at the finest
level of the 2D sweep.  Modeled part: the full Table II.
"""

import pytest

from repro.core.grid import hierarchy_for
from repro.core.mass import mass_apply
from repro.core.solver import solve_correction
from repro.core.transfer import transfer_apply
from repro.core.coefficients import compute_coefficients
from repro.experiments import bench_scale, format_kernel_table, kernel_speedup_table


@pytest.fixture(scope="module")
def setup(rng):
    side = min(bench_scale().side_2d, 2049)
    h = hierarchy_for((side, side))
    ops = h.level_ops(h.L, 0)
    v = rng.standard_normal((side, side))
    return h, ops, v


def test_compute_coefficients_kernel(benchmark, setup):
    h, _, v = setup
    benchmark(compute_coefficients, v, h, h.L)


def test_mass_kernel(benchmark, setup):
    _, ops, v = setup
    benchmark(mass_apply, v, ops.h_fine, 0)


def test_transfer_kernel(benchmark, setup):
    _, ops, v = setup
    benchmark(transfer_apply, v, ops, 0)


def test_solve_kernel(benchmark, setup, rng):
    _, ops, v = setup
    g = rng.standard_normal((ops.m_coarse, v.shape[1]))
    benchmark(solve_correction, g, ops, 0)


def test_table2(benchmark, report):
    s = bench_scale()
    rows = benchmark(kernel_speedup_table, "desktop", s.side_2d, s.side_3d)
    report("table2_kernel_speedup_desktop", format_kernel_table(rows, "desktop (Table II)"))
    assert all(r.max > r.min for r in rows)
    assert max(r.max for r in rows) > 100  # hundreds-x regime
