#!/usr/bin/env python
"""Shard-parallel compression scaling: serial vs thread vs process.

PR 5's sharded path splits a frame along axis 0 into independent
partitions (the paper's per-GPU decomposition model) and fans the
per-shard refactor→quantize→encode out through the executor backends,
staging the frame once in shared memory for process workers.  This
benchmark measures that fan-out and writes
``benchmarks/results/BENCH_shards.json`` so the perf trajectory stays
machine-readable:

1. **sharded encode** — one Gray–Scott frame compressed shard-by-shard
   through all three backends (containers asserted byte-identical);
2. **region read** — a sharded stream step read back through
   :meth:`~repro.io.stream.StepStreamReader.read_region`, recording the
   fraction of shard bytes a sub-volume read actually touches.

On a single-core host the parallel backends measure only their
scheduling/IPC overhead — ``cpu_count`` is recorded alongside so CI
numbers are interpreted correctly.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_shards.py

``REPRO_BENCH_SCALE=ci`` shrinks the workload for smoke runs.  Pass
``--assert-speedup`` to fail (exit 1) unless the process backend clears
1.5x on the sharded encode — intended for >= 4-core hosts, not CI.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.cluster.sharded import ShardCodec, encode_shards, plan_shards
from repro.io.stream import StepStreamReader, StepStreamWriter
from repro.parallel import available_workers, get_executor
from repro.workloads.grayscott import simulate

RESULTS = Path(__file__).parent / "results"

CI_SCALE = os.environ.get("REPRO_BENCH_SCALE") == "ci"


def _best_of(fn, repeats: int):
    best, out = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


def bench_encode(data, n_shards: int, backend: str, workers: int, repeats: int) -> dict:
    plan = plan_shards(data.shape, n_shards)
    tol = 1e-3 * float(data.max() - data.min())
    codec = ShardCodec(tol=tol, backend=backend)
    executors = {
        "serial": get_executor("serial"),
        "thread": get_executor(f"thread:{workers}"),
        "process": get_executor(f"process:{workers}"),
    }
    out = {"n_shards": n_shards, "backend": backend}
    reference = None
    for tag, ex in executors.items():
        t, payloads = _best_of(lambda: encode_shards(data, plan, codec, ex), repeats)
        if reference is None:
            reference = payloads
            out["payload_bytes"] = int(sum(len(p) for p in payloads))
        assert payloads == reference, f"{tag}: shard containers differ from serial"
        out[f"encode_{tag}_s"] = t
    for tag in ("thread", "process"):
        out[f"{tag}_speedup"] = out["encode_serial_s"] / out[f"encode_{tag}_s"]
    return out


def bench_region(data, n_shards: int, backend: str) -> dict:
    """Write one sharded step, read a 1-shard region, record selectivity."""
    tol = 1e-3 * float(data.max() - data.min())
    with tempfile.TemporaryDirectory() as d:
        writer = StepStreamWriter(
            Path(d) / "stream", data.shape, tol=tol, backend=backend,
            shards=n_shards,
        )
        writer.append(data)
        reader = StepStreamReader(Path(d) / "stream")
        rows = reader.shard_bounds[0][1]  # exactly the first shard
        decoded = []
        orig = StepStreamReader._decode_shard
        try:
            StepStreamReader._decode_shard = (
                lambda self, rd, i: decoded.append(i) or orig(self, rd, i)
            )
            t0 = time.perf_counter()
            region = reader.read_region(0, (slice(0, rows),))
            dt = time.perf_counter() - t0
        finally:
            StepStreamReader._decode_shard = orig
        assert float(np.abs(region - data[:rows]).max()) <= tol
        shard_bytes = [s["nbytes"] for s in reader.steps[0]["shards"]]
        return {
            "n_shards": n_shards,
            "region_rows": int(rows),
            "shards_decoded": len(decoded),
            "read_seconds": dt,
            "bytes_touched": int(sum(shard_bytes[i] for i in decoded)),
            "bytes_total": int(sum(shard_bytes)),
        }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default=str(RESULTS / "BENCH_shards.json"))
    parser.add_argument(
        "--assert-speedup",
        action="store_true",
        help="exit 1 unless process-backend sharded encode clears 1.5x "
        "(>=4-core hosts)",
    )
    args = parser.parse_args(argv)

    side = 17 if CI_SCALE else 33
    repeats = 2 if CI_SCALE else 3
    workers = 2 if CI_SCALE else max(available_workers(), 4)
    n_shards = 4 if CI_SCALE else 8
    data = simulate((side, side, side), steps=40 if CI_SCALE else 80, params="spots")

    report = {
        "benchmark": "shards",
        "scale": "ci" if CI_SCALE else "full",
        "cpu_count": available_workers(),
        "workers": workers,
        "shape": list(data.shape),
        "encode": {
            backend: bench_encode(data, n_shards, backend, workers, repeats)
            for backend in ("zlib", "huffman")
        },
        "region_read": bench_region(data, n_shards, "zlib"),
    }

    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2) + "\n")

    print(f"sharded encode ({report['cpu_count']} cores, {workers} workers, "
          f"{n_shards} shards on {side}^3):")
    for backend in ("zlib", "huffman"):
        b = report["encode"][backend]
        print(
            f"  {backend:8s} serial {b['encode_serial_s'] * 1e3:7.1f} ms   "
            f"thread {b['encode_thread_s'] * 1e3:7.1f} ms "
            f"({b['thread_speedup']:.2f}x)   "
            f"process {b['encode_process_s'] * 1e3:7.1f} ms "
            f"({b['process_speedup']:.2f}x)   [byte-identical]"
        )
    r = report["region_read"]
    print(
        f"  region read: {r['shards_decoded']}/{r['n_shards']} shards decoded, "
        f"{r['bytes_touched']}/{r['bytes_total']} bytes touched"
    )
    print(f"[written to {out}]")

    if args.assert_speedup:
        sp = report["encode"]["huffman"]["process_speedup"]
        if sp < 1.5:
            print(
                f"process-backend sharded encode speedup {sp:.2f}x below the "
                f"1.5x bar (host has {report['cpu_count']} cores)",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
