"""Table III: kernel-level speedups on Summit (V100 vs POWER9 core).

Functional part: times the literal tiled kernel frameworks (the paper's
§III designs) against the vectorized fast paths on a moderate grid.
Modeled part: the full Table III.
"""

import pytest

from repro.core.grid import hierarchy_for
from repro.experiments import bench_scale, format_kernel_table, kernel_speedup_table
from repro.kernels.grid_processing import GridProcessingKernel
from repro.kernels.linear_processing import LinearProcessingKernel


def test_tiled_grid_processing_kernel(benchmark, rng):
    h = hierarchy_for((129, 129))
    k = GridProcessingKernel(h, h.L, b=4)
    v = rng.standard_normal((129, 129))
    benchmark(k.compute, v)


def test_segmented_linear_kernel(benchmark, rng):
    h = hierarchy_for((257,))
    k = LinearProcessingKernel(h.level_ops(h.L, 0), segment=32)
    v = rng.standard_normal((64, 257))
    benchmark(k.mass_multiply, v)


def test_segmented_solver(benchmark, rng):
    h = hierarchy_for((257,))
    ops = h.level_ops(h.L, 0)
    k = LinearProcessingKernel(ops, segment=32)
    g = rng.standard_normal((64, ops.m_coarse))
    benchmark(k.solve, g)


def test_table3(benchmark, report):
    s = bench_scale()
    rows = benchmark(kernel_speedup_table, "summit", s.side_2d, s.side_3d)
    report("table3_kernel_speedup_summit", format_kernel_table(rows, "Summit (Table III)"))
    by = {(r.dims, r.kernel): r for r in rows}
    # the paper's ordering: 2D coefficients accelerate more than 3D
    assert (
        by[("2D", "Comp. Coefficients")].max > by[("3D", "Comp. Coefficients")].max
    )
