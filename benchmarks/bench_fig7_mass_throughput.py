"""Fig. 7: per-level mass-matrix throughput (CPU / naive GPU / LPF GPU).

Functional part: times the vectorized host mass-matrix kernel at the
finest and an intermediate level of the Fig. 7 sweep.  Modeled part:
regenerates the full figure series.
"""

import numpy as np
import pytest

from repro.core.grid import hierarchy_for
from repro.core.mass import mass_apply
from repro.experiments import bench_scale, fig7_mass_throughput, format_fig7


@pytest.fixture(scope="module")
def hier():
    side = min(bench_scale().fig7_side, 2049)  # functional-size cap
    return hierarchy_for((side, side))


def test_mass_apply_finest_level(benchmark, hier, rng):
    ops = hier.level_ops(hier.L, 0)
    v = rng.standard_normal(hier.shape)
    out = benchmark(mass_apply, v, ops.h_fine, 0)
    assert out.shape == v.shape


def test_mass_apply_coarse_level(benchmark, hier, rng):
    l = max(hier.L - 4, 1)
    ops = hier.level_ops(l, 0)
    v = rng.standard_normal(hier.level_shape(l))
    out = benchmark(mass_apply, v, ops.h_fine, 0)
    assert np.isfinite(out).all()


def test_fig7_series(benchmark, report):
    pts = benchmark(fig7_mass_throughput, bench_scale().fig7_side)
    report("fig7_mass_throughput", format_fig7(pts))
    # the paper's qualitative claims, re-checked on the emitted artifact
    assert all(p.lpf_gpu_gbps > p.naive_gpu_gbps for p in pts)
    assert pts[0].naive_gpu_gbps / pts[-1].naive_gpu_gbps > 100
