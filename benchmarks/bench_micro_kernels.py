#!/usr/bin/env python
"""Kernel-backend sweep: reference vs compiled across the launcher ops.

Times every op registered behind the kernel-launcher seam
(:mod:`repro.kernels.launcher`) on every backend available on this
host, at paper-scale shapes (65^3 linear-framework batches, 2^20-symbol
entropy streams), asserts bit identity between backends on every op
*and* byte identity of end-to-end compressed containers, and writes the
numbers to ``benchmarks/results/BENCH_kernels.json`` so the perf
trajectory of the compiled backend is machine-readable.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_micro_kernels.py

``REPRO_BENCH_SCALE=ci`` shrinks the workload for smoke runs.  Pass
``--assert-speedup`` to fail (exit 1) unless, with numba installed, at
least one hot op (mass at the 65^3 batch shape or the 1M-symbol Huffman
pack) clears the 3x acceptance bar; without numba the gate is skipped
(there is nothing to gate) and the sweep records reference times only.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

from repro.compress.mgard import MgardCompressor
from repro.kernels.autotune import KERNEL_TUNE_SCHEMA
from repro.kernels.jit import HAVE_NUMBA
from repro.kernels.launcher import (
    OP_SPECS,
    available_backends,
    run_op,
    set_kernel_backend,
)
from repro.workloads.synthetic import multiscale

RESULTS = Path(__file__).parent / "results"

CI_SCALE = os.environ.get("REPRO_BENCH_SCALE") == "ci"

# paper-scale operand shapes per op: the linear-framework ops see a
# 65^3 volume as a (65*65, 65) batch of vectors, the entropy ops a
# ~1M-symbol class stream
SHAPES = {
    "mass": (65 * 65, 65),
    "transfer": (65 * 65, 65),
    "solve": (65 * 65, 65),
    "quantize": (1 << 20,),
    "dequantize": (1 << 20,),
    "huff_pack": (1 << 20,),
    "huff_decode": (1 << 20,),
}
CI_SHAPES = {
    "mass": (17 * 17, 17),
    "transfer": (17 * 17, 17),
    "solve": (17 * 17, 17),
    "quantize": (1 << 14,),
    "dequantize": (1 << 14,),
    "huff_pack": (1 << 14,),
    "huff_decode": (1 << 14,),
}

# ops the >=3x acceptance gate may be satisfied on (the ISSUE's "65^3
# mass or 1M-symbol Huffman pack" hot ops)
GATE_OPS = ("mass", "huff_pack")
GATE_SPEEDUP = 3.0


def _best_of(fn, repeats: int) -> tuple[float, object]:
    best, out = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


def _identical(a, b) -> bool:
    """Bitwise equality of two op results (arrays compare by buffer)."""
    a, b = np.asarray(a), np.asarray(b)
    return a.dtype == b.dtype and a.shape == b.shape and a.tobytes() == b.tobytes()


def sweep_op(op: str, shape: tuple[int, ...], repeats: int) -> dict:
    """Time one op on every available backend; assert bit identity."""
    rng = np.random.default_rng(0xBEEF)
    args = OP_SPECS[op].make_inputs(shape, np.dtype(np.float64), rng)
    backends = {}
    reference_out = None
    for name in available_backends():
        run_op(name, op, *args)  # warm: JIT compile, caches
        seconds, out = _best_of(lambda: run_op(name, op, *args), repeats)
        backends[name] = seconds
        if name == "reference":
            reference_out = out
        elif not _identical(out, reference_out):
            raise AssertionError(f"backend {name!r} diverges from reference on {op}")
    row = {"op": op, "shape": list(shape), "dtype": "float64", "backends": backends}
    if "numba" in backends:
        row["speedup"] = backends["reference"] / backends["numba"]
    return row


def container_identity() -> dict:
    """End-to-end compressed containers must not depend on the backend."""
    side = 17 if CI_SCALE else 33
    shape = (side, side, side)
    data = multiscale(shape, seed=7)
    tol = 1e-3 * float(data.max() - data.min())
    payloads = {}
    try:
        for name in available_backends():
            set_kernel_backend(name if name != "reference" else "reference")
            comp = MgardCompressor.for_shape(shape, tol, backend="huffman")
            frame = comp.compress(data)
            payloads[name] = (b"".join(frame.payloads), json.dumps(frame.headers))
    finally:
        set_kernel_backend(None)
    ref = payloads["reference"]
    identical = all(p == ref for p in payloads.values())
    if not identical:
        raise AssertionError("compressed containers differ across kernel backends")
    return {
        "shape": list(shape),
        "backends": sorted(payloads),
        "container_bytes": len(ref[0]),
        "byte_identical": identical,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        default=str(RESULTS / "BENCH_kernels.json"),
        help="output JSON path",
    )
    parser.add_argument(
        "--repeats", type=int, default=3 if CI_SCALE else 5, help="best-of repeats"
    )
    parser.add_argument(
        "--assert-speedup",
        action="store_true",
        help=f"fail unless a hot op ({', '.join(GATE_OPS)}) clears "
        f"{GATE_SPEEDUP}x with numba installed",
    )
    args = parser.parse_args(argv)

    shapes = CI_SHAPES if CI_SCALE else SHAPES
    rows = [sweep_op(op, shapes[op], args.repeats) for op in OP_SPECS]
    container = container_identity()

    record = {
        "benchmark": "kernel_backends",
        "schema": KERNEL_TUNE_SCHEMA,
        "cpu_count": os.cpu_count(),
        "numba_available": HAVE_NUMBA,
        "scale": "ci" if CI_SCALE else "full",
        "repeats": args.repeats,
        "ops": rows,
        "container_identity": container,
    }
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(record, indent=2) + "\n")

    for row in rows:
        per = "   ".join(
            f"{n} {s * 1e3:8.3f} ms" for n, s in sorted(row["backends"].items())
        )
        gain = f"   ({row['speedup']:.2f}x)" if "speedup" in row else ""
        print(f"{row['op']:12s} {str(tuple(row['shape'])):16s} {per}{gain}")
    print(
        f"container identity across {container['backends']}: "
        f"{container['byte_identical']} ({container['container_bytes']} bytes)"
    )
    print(f"[json record written to {out}]")

    if args.assert_speedup:
        if not HAVE_NUMBA:
            print("numba not installed; speedup gate skipped")
            return 0
        best = max(
            (row.get("speedup", 0.0) for row in rows if row["op"] in GATE_OPS),
            default=0.0,
        )
        if best < GATE_SPEEDUP:
            print(
                f"FAIL: best hot-op speedup {best:.2f}x < {GATE_SPEEDUP}x",
                file=sys.stderr,
            )
            return 1
        print(f"speedup gate passed: {best:.2f}x >= {GATE_SPEEDUP}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
