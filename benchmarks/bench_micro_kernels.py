"""Micro-benchmarks of the vectorized host kernels across sizes.

Real wall-clock times of the five core kernels on this machine — the
functional substrate everything else rides on.  Useful for spotting
regressions in the NumPy implementations themselves (independent of the
modeled hardware numbers).
"""

import numpy as np
import pytest

from repro.core.coefficients import compute_coefficients, restore_from_coefficients
from repro.core.decompose import restrict_all
from repro.core.grid import hierarchy_for
from repro.core.mass import mass_apply
from repro.core.solver import solve_correction, thomas_solve
from repro.core.transfer import transfer_apply

SIZES_2D = [257, 1025]
SIZES_3D = [65, 129]


@pytest.mark.parametrize("n", SIZES_2D)
def test_coefficients_2d(benchmark, n, rng):
    h = hierarchy_for((n, n))
    v = rng.standard_normal((n, n))
    benchmark(compute_coefficients, v, h, h.L)


@pytest.mark.parametrize("n", SIZES_3D)
def test_coefficients_3d(benchmark, n, rng):
    h = hierarchy_for((n, n, n))
    v = rng.standard_normal((n, n, n))
    benchmark(compute_coefficients, v, h, h.L)


@pytest.mark.parametrize("n", SIZES_2D)
def test_restore_2d(benchmark, n, rng):
    h = hierarchy_for((n, n))
    v = rng.standard_normal((n, n))
    c = compute_coefficients(v, h, h.L)
    vc = restrict_all(v, h, h.L)
    benchmark(restore_from_coefficients, c, vc, h, h.L)


@pytest.mark.parametrize("n", SIZES_2D)
@pytest.mark.parametrize("axis", [0, 1])
def test_mass_axis(benchmark, n, axis, rng):
    h = hierarchy_for((n, n))
    ops = h.level_ops(h.L, axis)
    v = rng.standard_normal((n, n))
    benchmark(mass_apply, v, ops.h_fine, axis)


@pytest.mark.parametrize("n", SIZES_2D)
def test_transfer(benchmark, n, rng):
    h = hierarchy_for((n, n))
    ops = h.level_ops(h.L, 0)
    v = rng.standard_normal((n, n))
    benchmark(transfer_apply, v, ops, 0)


@pytest.mark.parametrize("n", SIZES_2D)
def test_solve_scipy_path(benchmark, n, rng):
    h = hierarchy_for((n, n))
    ops = h.level_ops(h.L, 0)
    g = rng.standard_normal((ops.m_coarse, n))
    benchmark(solve_correction, g, ops, 0)


def test_solve_thomas_path(benchmark, rng):
    h = hierarchy_for((257, 257))
    ops = h.level_ops(h.L, 0)
    g = rng.standard_normal((ops.m_coarse, 257))
    out_scipy = solve_correction(g, ops, 0)
    out_thomas = benchmark(thomas_solve, g, ops, 0)
    np.testing.assert_allclose(out_thomas, out_scipy, atol=1e-9)
