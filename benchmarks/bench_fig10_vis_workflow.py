"""Fig. 10: visualization-workflow I/O cost + functional accuracy demo.

Functional part: the real producer→container→consumer loop with
iso-surface accuracy on Gray–Scott data.  Modeled part: the 4 TB
write/read cost curves.
"""

import pytest

from repro.experiments import (
    fig10_accuracy_demo,
    fig10_workflow,
    format_fig10,
)
from repro.io.workflow import run_workflow_demo
from repro.workloads.grayscott import simulate


@pytest.fixture(scope="module")
def field():
    return simulate((33, 33, 33), steps=400, params="stripes")


def test_workflow_demo_functional(benchmark, field, tmp_path_factory):
    iso = float(0.25 * field.max() + 0.75 * field.min())
    workdir = tmp_path_factory.mktemp("wf")
    res = benchmark.pedantic(
        run_workflow_demo, args=(field, iso), kwargs={"workdir": workdir},
        rounds=1, iterations=1,
    )
    assert res[-1].accuracy > 0.999


def test_fig10(benchmark, report):
    curves = benchmark(fig10_workflow)
    lines = [format_fig10(curves)]
    demo = fig10_accuracy_demo(shape=(33, 33, 33), steps=400)
    lines.append("functional accuracy demo (33^3 Gray-Scott, iso-surface area):")
    for r in demo:
        lines.append(
            f"  k={r.k_classes:2d}: bytes={r.bytes_read:8d} accuracy={r.accuracy:.3f}"
        )
    report("fig10_vis_workflow", "\n".join(lines))
    # the paper's regime: a small class prefix reaches >=95% feature accuracy
    small_prefix = [r for r in demo if r.k_classes <= max(3, len(demo) // 2)]
    assert max(r.accuracy for r in small_prefix) >= 0.95
    # GPU refactoring keeps prefix writes well below the full write
    gpu = curves["write/gpu"]
    assert gpu[2].total_seconds < 0.5 * gpu[-1].total_seconds
