#!/usr/bin/env python
"""Decode-side executor scaling: serial vs thread vs process backends.

The encode path scales with threads because its heavy kernels release
the GIL; the *decode* path's bottleneck — the lockstep sync-block
Huffman loop — does not, which is exactly what the process backend
(shared-memory payload staging, see ``repro/parallel/``) exists for.
This benchmark measures that claim and writes
``benchmarks/results/BENCH_decode_scaling.json`` so the repo's perf
trajectory stays machine-readable:

1. **Huffman dominant class** — a skewed symbol stream large enough to
   engage the sync-range split, decoded through all three backends
   (outputs asserted identical).
2. **zlib sub-blocked class** — a wide-integer class whose narrowed raw
   stream spans many deflate sub-blocks, ditto.

On a single-core host the parallel backends measure only their
scheduling/IPC overhead — ``cpu_count`` is recorded alongside so CI
numbers are interpreted correctly.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_decode_scaling.py

``REPRO_BENCH_SCALE=ci`` shrinks the workload for smoke runs.  Pass
``--assert-speedup`` to fail (exit 1) unless the process backend clears
1.5x on the Huffman decode — intended for >= 4-core hosts, not CI.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

from repro.compress.huffman import _MIN_DECODE_BLOCKS_PER_WORKER, _SYNC_BLOCK
from repro.compress.lossless import (
    _ZLIB_BLOCK_BYTES,
    decode_classes,
    encode_classes,
)
from repro.parallel import available_workers, get_executor
from repro.workloads.synthetic import skewed_bins

RESULTS = Path(__file__).parent / "results"

CI_SCALE = os.environ.get("REPRO_BENCH_SCALE") == "ci"


def _best_of(fn, repeats: int):
    best, out = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


def _measure(payload, header, bins, executors, repeats: int) -> dict:
    out = {}
    for tag, ex in executors.items():
        t, (flat, _) = _best_of(
            lambda: decode_classes(payload, header, executor=ex), repeats
        )
        assert np.array_equal(flat, bins), f"{tag}: decode mismatch"
        out[f"decode_{tag}_s"] = t
    for tag in ("thread", "process"):
        out[f"{tag}_speedup"] = out["decode_serial_s"] / out[f"decode_{tag}_s"]
    return out


def bench_huffman(workers: int, repeats: int) -> dict:
    # enough sync blocks that `workers` ranges each keep wide vectors
    blocks = workers * _MIN_DECODE_BLOCKS_PER_WORKER + 16
    n = blocks * _SYNC_BLOCK + 321
    rng = np.random.default_rng(2021)
    vals = skewed_bins(n)
    vals[:: n // 100] = rng.integers(-(2**60), 2**60, vals[:: n // 100].size)
    small = rng.integers(-4, 5, 512).astype(np.int64)
    bins = np.concatenate([small, vals])
    sizes = [small.size, n]
    payload, header = encode_classes(bins, sizes, backend="huffman")
    executors = {
        "serial": None,
        "thread": get_executor(f"thread:{workers}"),
        "process": get_executor(f"process:{workers}"),
    }
    return {
        "n_symbols": int(bins.size),
        "payload_bytes": len(payload),
        **_measure(payload, header, bins, executors, repeats),
    }


def bench_zlib(workers: int, repeats: int) -> dict:
    blocks = 4 if CI_SCALE else 16
    n = blocks * _ZLIB_BLOCK_BYTES // 8 + 17  # int64-wide raw stream
    rng = np.random.default_rng(7)
    wide = rng.integers(-(2**40), 2**40, n).astype(np.int64)
    small = rng.integers(-4, 5, 512).astype(np.int64)
    bins = np.concatenate([small, wide])
    sizes = [small.size, n]
    payload, header = encode_classes(bins, sizes, backend="zlib")
    n_blocks = len(header["segments"][1].get("blocks", []))
    assert n_blocks >= 2, "workload did not trigger sub-blocking"
    executors = {
        "serial": None,
        "thread": get_executor(f"thread:{workers}"),
        "process": get_executor(f"process:{workers}"),
    }
    return {
        "n_symbols": int(bins.size),
        "payload_bytes": len(payload),
        "sub_blocks": n_blocks,
        **_measure(payload, header, bins, executors, repeats),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default=str(RESULTS / "BENCH_decode_scaling.json"))
    parser.add_argument(
        "--assert-speedup",
        action="store_true",
        help="exit 1 unless process-backend huffman decode clears 1.5x "
        "(>=4-core hosts)",
    )
    args = parser.parse_args(argv)

    repeats = 2 if CI_SCALE else 3
    workers = 2 if CI_SCALE else max(available_workers(), 4)

    report = {
        "benchmark": "decode_scaling",
        "scale": "ci" if CI_SCALE else "full",
        "cpu_count": available_workers(),
        "workers": workers,
        "huffman": bench_huffman(workers, repeats),
        "zlib": bench_zlib(workers, repeats),
    }

    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2) + "\n")

    print(
        f"decode scaling ({report['cpu_count']} cores, {workers} workers):"
    )
    for backend in ("huffman", "zlib"):
        b = report[backend]
        print(
            f"  {backend:8s} serial {b['decode_serial_s'] * 1e3:7.1f} ms   "
            f"thread {b['decode_thread_s'] * 1e3:7.1f} ms "
            f"({b['thread_speedup']:.2f}x)   "
            f"process {b['decode_process_s'] * 1e3:7.1f} ms "
            f"({b['process_speedup']:.2f}x)"
        )
    print(f"[written to {out}]")

    if args.assert_speedup:
        sp = report["huffman"]["process_speedup"]
        if sp < 1.5:
            print(
                f"process-backend huffman decode speedup {sp:.2f}x below the "
                f"1.5x bar (host has {report['cpu_count']} cores)",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
