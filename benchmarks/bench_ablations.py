"""Ablation benches: what each of the paper's design choices is worth."""

import pytest

from repro.experiments import ablation_sweep, format_ablations
from repro.core.decompose import decompose
from repro.core.grid import hierarchy_for
from repro.kernels.launches import EngineOptions
from repro.kernels.metered import GpuSimEngine


@pytest.mark.parametrize(
    "name,opts",
    [
        ("full", EngineOptions()),
        ("no_packing", EngineOptions(pack_nodes=False)),
        ("divergent", EngineOptions(divergence_free=False)),
        ("naive", EngineOptions(framework="naive", pack_nodes=False)),
    ],
)
def test_engine_variants_functional(benchmark, name, opts, rng):
    data = rng.standard_normal((513, 513))
    h = hierarchy_for((513, 513))

    def run():
        eng = GpuSimEngine(opts=opts)
        decompose(data, h, eng)
        return eng.clock

    assert benchmark(run) > 0


def test_ablation_tables(benchmark, report):
    def build():
        return {
            "2d": ablation_sweep((4097, 4097)),
            "3d": ablation_sweep((257, 257, 257)),
        }

    tables = benchmark(build)
    text = "\n\n".join(format_ablations(v) for v in tables.values())
    report("ablations", text)
    rows_2d = {r.name: r for r in tables["2d"]}
    assert rows_2d["no node packing"].slowdown > 1.1
    assert rows_2d["naive linear kernels"].slowdown > 2.0
