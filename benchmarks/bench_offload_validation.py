"""Offload break-even analysis and the paper-values validation report."""

from repro.experiments import (
    format_offload,
    format_validation,
    offload_experiment,
    validation_report,
)


def test_offload(benchmark, report):
    result = benchmark(offload_experiment)
    report("offload_breakeven", format_offload(result))
    for tag, (side, pts) in result.items():
        assert side is not None, f"offload never pays off on {tag}"
        assert side <= 257  # the paper's cost-effectiveness claim (§I)


def test_validation(benchmark, report):
    claims = benchmark(validation_report)
    report("paper_validation", format_validation(claims))
    out_of_band = [c.id for c in claims if not c.ok]
    assert not out_of_band, f"claims out of band: {out_of_band}"
