"""Table IV: end-to-end time breakdown of decomposition/recomposition.

Functional part: times full decompositions and recompositions through
the metered GPU-sim engine (real arithmetic + modeled accounting).
Modeled part: the paper-scale Table IV (2D 8193², 3D 513³).
"""

import numpy as np
import pytest

from repro.core.decompose import decompose, recompose
from repro.core.grid import hierarchy_for
from repro.experiments import bench_scale, format_table4, table4_breakdown
from repro.kernels.metered import GpuSimEngine


@pytest.fixture(scope="module")
def data_2d(rng):
    side = min(bench_scale().side_2d, 2049)
    return rng.standard_normal((side, side))


@pytest.fixture(scope="module")
def data_3d(rng):
    side = min(bench_scale().side_3d, 129)
    return rng.standard_normal((side, side, side))


def test_decompose_2d(benchmark, data_2d):
    h = hierarchy_for(data_2d.shape)
    out = benchmark(decompose, data_2d, h)
    assert out.shape == data_2d.shape


def test_recompose_2d(benchmark, data_2d):
    h = hierarchy_for(data_2d.shape)
    ref = decompose(data_2d, h)
    out = benchmark(recompose, ref, h)
    np.testing.assert_allclose(out, data_2d, atol=1e-8)


def test_decompose_3d_metered(benchmark, data_3d):
    h = hierarchy_for(data_3d.shape)

    def run():
        eng = GpuSimEngine()
        decompose(data_3d, h, eng)
        return eng.clock

    modeled = benchmark(run)
    assert modeled > 0


def test_table4(benchmark, report):
    rows = benchmark(table4_breakdown)
    report("table4_time_breakdown", format_table4(rows))
    # CPU totals at paper scale land in the paper's tens-of-seconds regime
    cpu_2d = [r for r in rows if "POWER9" in r.hardware and len(r.shape) == 2]
    assert 8 < cpu_2d[0].total < 30  # paper: 15.07 s
