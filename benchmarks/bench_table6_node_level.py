"""Table VI: all GPUs vs all CPU cores at node level."""

from repro.cluster.node import DESKTOP, SUMMIT_NODE, node_speedup
from repro.experiments import format_table6, table6_node_level


def test_node_speedup_summit(benchmark):
    row = benchmark(node_speedup, SUMMIT_NODE, (8193, 8193))
    assert row["speedup"] > 10


def test_node_speedup_desktop(benchmark):
    row = benchmark(node_speedup, DESKTOP, (8193, 8193))
    assert row["speedup"] > 1


def test_table6(benchmark, report):
    rows = benchmark(table6_node_level)
    report("table6_node_level", format_table6(rows))
    assert len(rows) == 8
