#!/usr/bin/env python
"""Service benchmark: tail latency of the async compression front-end.

Drives :func:`repro.experiments.service_exp.service_experiment` — an
open-loop load generator (N concurrent readers following a live writer,
Poisson arrivals over real TCP) against two configurations of
:class:`repro.service.server.CompressionService`:

* **batched** — adaptive micro-batching + decoded-step LRU (default);
* **naive** — no coalescing, no cache: every request decodes alone.

Writes ``benchmarks/results/BENCH_service.json`` with throughput,
p50/p99/p99.9 latency, the batch-coalescing rate, the cache hit rate,
shed counts, and the naive/batched speedup per percentile, plus the
kill-and-reconnect chaos record.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_service.py --assert-speedup 2

``--assert-speedup X`` exits 1 unless the batched server beats the
naive one by ≥ X on p99 (the CI gate runs it at full scale with 16
readers).  ``--smoke`` (or ``REPRO_BENCH_SCALE=ci``) shrinks the load
for CI smoke runs; ``--no-chaos`` skips the subprocess kill case.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

RESULTS = Path(__file__).parent / "results"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default=str(RESULTS / "BENCH_service.json"))
    parser.add_argument("--readers", type=int, default=None,
                        help="concurrent reader connections (default: scale)")
    parser.add_argument("--duration", type=float, default=None,
                        help="seconds of load per configuration")
    parser.add_argument("--rate", type=float, default=None,
                        help="combined open-loop arrival rate, req/s")
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized load (same as REPRO_BENCH_SCALE=ci)")
    parser.add_argument("--no-chaos", action="store_true",
                        help="skip the kill-and-reconnect subprocess case")
    parser.add_argument("--assert-speedup", type=float, default=None,
                        metavar="X", help="exit 1 unless p99 speedup >= X")
    args = parser.parse_args(argv)

    if args.smoke:
        os.environ["REPRO_BENCH_SCALE"] = "ci"
    # import after the scale env is settled
    from repro.experiments.service_exp import format_service, service_experiment
    from repro.parallel import available_workers

    rec = service_experiment(
        readers=args.readers,
        duration_s=args.duration,
        rate_hz=args.rate,
        chaos=not args.no_chaos,
    )
    report = {
        "benchmark": "service",
        "scale": "ci" if os.environ.get("REPRO_BENCH_SCALE") == "ci" else "full",
        "cpu_count": available_workers(),
        **rec,
    }

    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2) + "\n")

    print(format_service(rec))
    print(f"[written to {out}]")

    chaos = rec.get("chaos")
    if chaos and not (chaos["read_after_kill_ok"] and chaos["converged"]):
        print("chaos case failed: client did not reconnect/converge",
              file=sys.stderr)
        return 1
    if args.assert_speedup is not None:
        p99_x = rec["speedup"]["p99_x"]
        if p99_x is None or p99_x < args.assert_speedup:
            print(
                f"p99 speedup {p99_x} below required {args.assert_speedup}x "
                f"(batched p99 {rec['batched']['latency_ms']['p99']} ms, "
                f"naive p99 {rec['naive']['latency_ms']['p99']} ms)",
                file=sys.stderr,
            )
            return 1
        print(f"p99 speedup {p99_x:.1f}x >= {args.assert_speedup}x: gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
