"""Table V: one GPU vs one CPU core across grid sizes + extra memory.

Functional part: times end-to-end refactoring through both metered
engines at a mid-size grid and checks the modeled speedup is in the
paper's band.  Modeled part: the full Table V sweep.
"""

import pytest

from repro.core.decompose import decompose
from repro.core.grid import hierarchy_for
from repro.experiments import bench_scale, format_table5, table5_end_to_end
from repro.kernels.metered import CpuRefEngine, GpuSimEngine


@pytest.fixture(scope="module")
def mid_grid(rng):
    return rng.standard_normal((513, 513))


def test_gpu_engine_end_to_end(benchmark, mid_grid):
    h = hierarchy_for(mid_grid.shape)

    def run():
        eng = GpuSimEngine()
        decompose(mid_grid, h, eng)
        return eng.clock

    assert benchmark(run) > 0


def test_cpu_engine_end_to_end(benchmark, mid_grid):
    h = hierarchy_for(mid_grid.shape)

    def run():
        eng = CpuRefEngine()
        decompose(mid_grid, h, eng)
        return eng.clock

    assert benchmark(run) > 0


def test_table5(benchmark, report):
    s = bench_scale()
    rows = benchmark(table5_end_to_end, s.sweep_2d, s.sweep_3d)
    report("table5_end_to_end", format_table5(rows))
    largest_2d = [r for r in rows if len(r.shape) == 2][-1]
    if s.name == "paper":
        # paper: 311x Summit / 102x desktop at 8193^2
        assert 150 < largest_2d.summit_decompose < 600
        assert 50 < largest_2d.desktop_decompose < 250
