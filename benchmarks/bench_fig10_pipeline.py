#!/usr/bin/env python
"""Measured Fig. 10 streaming-write pipeline, both stream modes.

The paper's workflow argument is that refactor, encode, and write
*overlap*, so the pipeline runs at the bottleneck stage's speed.  PR 3
measured that for the refactored mode; PR 4 split the compressed mode's
closed-loop prediction (``predict_residual`` / ``encode_residual``) so
its three stages overlap too.  This benchmark runs
:func:`repro.io.workflow.run_streaming_pipeline` in both modes through
the one mode-agnostic spine and writes
``benchmarks/results/BENCH_pipeline.json`` so the repo's perf
trajectory stays machine-readable: each mode records its calibrated
per-stage seconds, the measured serial/pipelined walls, and the
analytic :meth:`PipelineModel.makespan
<repro.cluster.pipeline.PipelineModel.makespan>` of the calibrated
model next to them.

On a single-core host the pipelined run measures only its scheduling
overhead (the thread pool cannot actually overlap stages) —
``cpu_count`` is recorded alongside so CI numbers are interpreted
correctly; the *modeled* overlap gain is hardware-independent.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_fig10_pipeline.py

``REPRO_BENCH_SCALE=ci`` shrinks the workload for smoke runs.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

from repro.compress.executor import default_spec
from repro.experiments import fig10_measured_pipeline
from repro.parallel import available_workers

RESULTS = Path(__file__).parent / "results"

CI_SCALE = os.environ.get("REPRO_BENCH_SCALE") == "ci"


def bench_mode(mode: str, executor: str, codec_executor: str) -> dict:
    codec = codec_executor if mode == "compressed" else None
    t0 = time.perf_counter()
    m = fig10_measured_pipeline(
        executor=executor, mode=mode, codec_executor=codec
    )
    rec = m.record()
    rec["codec_executor"] = codec
    rec["bench_wall_s"] = time.perf_counter() - t0
    return rec


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default=str(RESULTS / "BENCH_pipeline.json"))
    parser.add_argument(
        "--executor",
        default="thread:4",
        help="pipeline stage pool (width only; default thread:4)",
    )
    parser.add_argument(
        "--codec-executor",
        default=None,
        help="entropy-stage fan-out inside the compressed writer "
        "(default: the ambient REPRO_EXECUTOR spec)",
    )
    args = parser.parse_args(argv)
    codec = args.codec_executor or default_spec()

    report = {
        "benchmark": "fig10_pipeline",
        "scale": "ci" if CI_SCALE else "full",
        "cpu_count": available_workers(),
        "modes": {
            mode: bench_mode(mode, args.executor, codec)
            for mode in ("refactored", "compressed")
        },
    }

    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2) + "\n")

    n_steps = report["modes"]["refactored"]["n_steps"]
    print(f"fig10 pipeline ({report['cpu_count']} cores, {n_steps} steps):")
    for mode, r in report["modes"].items():
        stages = ", ".join(
            f"{n}={s * 1e3:.1f}ms"
            for n, s in zip(r["stage_names"], r["stage_seconds"])
        )
        print(
            f"  {mode:10s} [{stages}]\n"
            f"             serial {r['serial_wall_s'] * 1e3:7.1f} ms   "
            f"pipelined {r['pipelined_wall_s'] * 1e3:7.1f} ms "
            f"({r['measured_overlap_gain']:.2f}x measured, "
            f"{r['modeled_overlap_gain']:.2f}x modeled, "
            f"bottleneck {r['bottleneck']})"
        )
    print(f"[written to {out}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
