"""Fig. 11: MGARD lossy-compression stage breakdown (CPU vs GPU offload).

Functional part: real compress/decompress round trips (refactoring,
quantization, zlib).  Modeled part: the per-stage breakdown rows.
"""

import numpy as np
import pytest

from repro.compress.mgard import MgardCompressor
from repro.core.grid import hierarchy_for
from repro.experiments import fig11_mgard, format_fig11
from repro.workloads.grayscott import simulate


@pytest.fixture(scope="module")
def field():
    return simulate((65, 65, 65), steps=200, params="spots")


@pytest.fixture(scope="module")
def compressor(field):
    hier = hierarchy_for(field.shape)
    rng = float(field.max() - field.min()) or 1.0
    return MgardCompressor(hier, 1e-3 * rng)


def test_compress(benchmark, field, compressor):
    blob = benchmark(compressor.compress, field)
    assert blob.compression_ratio() > 2


def test_decompress(benchmark, field, compressor):
    blob = compressor.compress(field)
    out = benchmark(compressor.decompress, blob)
    assert np.abs(out - field).max() <= blob.tol


def test_fig11(benchmark, report):
    rows = benchmark.pedantic(
        fig11_mgard, kwargs={"shape": (129, 129, 129), "steps": 200},
        rounds=1, iterations=1,
    )
    report("fig11_mgard", format_fig11(rows))
    by = {(r.config, r.operation): r for r in rows}
    # the paper's story: offload shrinks the total and moves the
    # bottleneck from refactoring to the (CPU) entropy stage
    assert by[("GPU-offload", "compress")].total < by[("CPU", "compress")].total
    assert (
        by[("GPU-offload", "compress")].entropy_s
        > by[("GPU-offload", "compress")].refactor_s
    )
