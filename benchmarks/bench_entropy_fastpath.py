#!/usr/bin/env python
"""Entropy-stage fast path + cached plans: before/after benchmark.

Measures the scalar reference implementations ("before": the seed's
per-element encode and per-bit pack/unpack loops) against the vectorized
fast path ("after"), plus the end-to-end compressor with and without
cached plans/batched class encoding, and writes the numbers to
``benchmarks/results/BENCH_entropy_fastpath.json`` so the repo's perf
trajectory is machine-readable.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_entropy_fastpath.py

``REPRO_BENCH_SCALE=ci`` shrinks the workload for smoke runs.  Pass
``--assert-speedup`` to fail (exit 1) unless the entropy stage clears
the 10x acceptance bar.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

from repro.compress.huffman import (
    huffman_decode,
    huffman_decode_scalar,
    huffman_encode,
    huffman_encode_scalar,
)
from repro.compress.mgard import MgardCompressor
from repro.core.grid import clear_hierarchy_cache, hierarchy_for
from repro.compress.plan import clear_plan_cache
from repro.workloads.synthetic import multiscale, skewed_bins

RESULTS = Path(__file__).parent / "results"

CI_SCALE = os.environ.get("REPRO_BENCH_SCALE") == "ci"


def _best_of(fn, repeats: int) -> tuple[float, object]:
    best, out = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


def bench_entropy(n_symbols: int, repeats: int) -> dict:
    """Scalar vs vectorized Huffman on a skewed int64 stream."""
    values = skewed_bins(n_symbols)
    enc_fast, (payload, header) = _best_of(lambda: huffman_encode(values), repeats)
    dec_fast, decoded = _best_of(lambda: huffman_decode(payload, header), repeats)
    if not np.array_equal(decoded, values):
        raise AssertionError("fast path round-trip failed")
    # the scalar loops are orders of magnitude slower; time them once
    enc_ref, (payload_ref, header_ref) = _best_of(
        lambda: huffman_encode_scalar(values), 1
    )
    dec_ref, decoded_ref = _best_of(lambda: huffman_decode_scalar(payload, header), 1)
    if payload_ref != payload or header_ref != header:
        raise AssertionError("scalar and vectorized payloads diverge")
    if not np.array_equal(decoded_ref, values):
        raise AssertionError("scalar round-trip failed")
    return {
        "n_symbols": n_symbols,
        "payload_bits": header["bits"],
        "scalar_encode_s": enc_ref,
        "scalar_decode_s": dec_ref,
        "fast_encode_s": enc_fast,
        "fast_decode_s": dec_fast,
        "encode_speedup": enc_ref / enc_fast,
        "decode_speedup": dec_ref / dec_fast,
        "combined_speedup": (enc_ref + dec_ref) / (enc_fast + dec_fast),
    }


def bench_end_to_end(shape: tuple[int, ...], n_fields: int, backend: str) -> dict:
    """Repeated same-shape compress/decompress: seed path vs fast path.

    "Before" rebuilds the hierarchy per field and encodes one
    payload/header per class (the seed behaviour); "after" reuses the
    cached compression plan and the batched single-header entropy stage.
    """
    fields = [multiscale(shape, seed=i) for i in range(n_fields)]
    tol = 1e-3

    def before():
        # the seed pipeline: fresh hierarchy per field, one payload per
        # class, and — for the huffman backend — the scalar entropy loops
        from repro.compress import lossless

        clear_hierarchy_cache()
        clear_plan_cache()
        patched = (lossless.huffman_encode, lossless.huffman_decode)
        lossless.huffman_encode = huffman_encode_scalar
        lossless.huffman_decode = huffman_decode_scalar
        try:
            total = 0.0
            for f in fields:
                t0 = time.perf_counter()
                hier = hierarchy_for(shape)
                comp = MgardCompressor(hier, tol, backend=backend, batch_classes=False)
                blob = comp.compress(f)
                out = comp.decompress(blob)
                total += time.perf_counter() - t0
                assert np.abs(out - f).max() <= tol
            return total
        finally:
            lossless.huffman_encode, lossless.huffman_decode = patched

    def after():
        clear_hierarchy_cache()
        clear_plan_cache()
        total = 0.0
        for f in fields:
            t0 = time.perf_counter()
            comp = MgardCompressor.for_shape(shape, tol, backend=backend)
            blob = comp.compress(f)
            out = comp.decompress(blob)
            total += time.perf_counter() - t0
            assert np.abs(out - f).max() <= tol
        return total

    t_before = before()
    t_after = after()
    return {
        "shape": list(shape),
        "n_fields": n_fields,
        "backend": backend,
        "before_s": t_before,
        "after_s": t_after,
        "speedup": t_before / t_after,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default=str(RESULTS / "BENCH_entropy_fastpath.json"))
    parser.add_argument("--assert-speedup", action="store_true")
    args = parser.parse_args(argv)

    n_symbols = 1 << 16 if CI_SCALE else 1 << 20
    repeats = 2 if CI_SCALE else 3
    shape = (33, 33, 33) if CI_SCALE else (65, 65, 65)
    n_fields = 3 if CI_SCALE else 6

    entropy = bench_entropy(n_symbols, repeats)
    e2e = [
        bench_end_to_end(shape, n_fields, backend) for backend in ("zlib", "huffman")
    ]
    report = {
        "benchmark": "entropy_fastpath",
        "scale": "ci" if CI_SCALE else "paper",
        "entropy": entropy,
        "end_to_end": e2e,
    }
    out_path = Path(args.out)
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(report, indent=2) + "\n")

    print(
        f"entropy ({entropy['n_symbols']} skewed int64 symbols): "
        f"encode {entropy['encode_speedup']:.1f}x  "
        f"decode {entropy['decode_speedup']:.1f}x  "
        f"combined {entropy['combined_speedup']:.1f}x"
    )
    for r in e2e:
        print(
            f"end-to-end {tuple(r['shape'])} x{r['n_fields']} [{r['backend']}]: "
            f"{r['before_s']:.3f}s -> {r['after_s']:.3f}s "
            f"({r['speedup']:.2f}x)"
        )
    print(f"[written to {out_path}]")

    if args.assert_speedup and entropy["combined_speedup"] < 10.0:
        print("FAIL: entropy combined speedup below 10x", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
