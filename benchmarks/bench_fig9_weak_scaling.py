#!/usr/bin/env python
"""Fig. 9 weak scaling: measured SPMD fabrics next to the analytic model.

Each rank refactors (decompose + recompose) its own fixed-size
partition — the paper's per-GPU independent-partition workload — so
total work grows with the rank count while per-rank work stays
constant.  The sweep runs the same rank function on both fabrics:

* ``thread`` — the deterministic reference; Python-level refactor
  loops serialize on the GIL, so aggregate throughput plateaus;
* ``process`` — forked OS ranks over the UNIX-socket + shared-memory
  fabric; aggregate throughput scales with cores.

Results land in ``benchmarks/results/BENCH_weak_scaling.json`` with
``cpu_count`` stamped (a 1-core host honestly records ~1x); the
analytic 4096-GPU model (``fig9_weak_scaling``) is regenerated next to
the measurements, preserving ``results/fig9_weak_scaling.txt``.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_fig9_weak_scaling.py

``REPRO_BENCH_SCALE=ci`` (or ``--smoke``) shrinks partitions and the
rank sweep.  ``--fabric process --ranks 8 --assert-speedup`` is the CI
gate: it fails (exit 1) unless the process fabric clears 2x aggregate
refactor throughput over the thread fabric at 8 ranks on a >= 4-core
host (relaxed to 1.2x on 2-3 cores, skipped with a notice on 1).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

from repro.cluster import last_run_report, run_spmd
from repro.experiments import fig9_weak_scaling, format_fig9
from repro.parallel import available_workers

RESULTS = Path(__file__).parent / "results"

CI_SCALE = os.environ.get("REPRO_BENCH_SCALE") == "ci"


def _rank_refactor(comm, side: int, iters: int):
    """Refactor one per-rank partition; returns (max error, busy seconds)."""
    from repro.core.refactor import Refactorer

    rng = np.random.default_rng(1000 + comm.rank)
    chunk = rng.standard_normal((side, side))
    r = Refactorer(chunk.shape)
    comm.barrier()  # no rank starts until every rank is set up
    t0 = time.perf_counter()
    err = 0.0
    for _ in range(iters):
        err = max(err, float(np.abs(r.recompose(r.decompose(chunk)) - chunk).max()))
    busy = time.perf_counter() - t0
    # one collective over the result keeps the run honest end-to-end
    return comm.allreduce(err, op=max), busy


def measure_point(fabric: str, n_ranks: int, side: int, iters: int, repeats: int) -> dict:
    """Best-of-``repeats`` weak-scaling point for one (fabric, n_ranks)."""
    per_rank_bytes = side * side * 8 * iters
    best = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        results = run_spmd(
            _rank_refactor, n_ranks, side, iters, fabric=fabric, recv_timeout=120.0
        )
        wall = time.perf_counter() - t0
        errs = [e for e, _ in results]
        assert max(errs) < 1e-9, f"refactor round-trip broke: {max(errs)}"
        point = {
            "fabric": fabric,
            "n_ranks": n_ranks,
            "wall_s": wall,
            "spmd_wall_s": last_run_report().wall_s,
            "rank_busy_s": max(b for _, b in results),
            "aggregate_bytes_per_s": n_ranks * per_rank_bytes / wall,
        }
        if best is None or point["wall_s"] < best["wall_s"]:
            best = point
    return best


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default=str(RESULTS / "BENCH_weak_scaling.json"))
    parser.add_argument(
        "--fabric",
        choices=("both", "process", "thread"),
        default="both",
        help="measured fabric(s); 'process' still measures the thread "
        "baseline at each rank count for the speedup ratio",
    )
    parser.add_argument(
        "--ranks",
        default=None,
        help="comma-separated rank counts (default 8,16,32,64; ci/smoke 4,8)",
    )
    parser.add_argument("--smoke", action="store_true", help="tiny run (CI smoke)")
    parser.add_argument(
        "--assert-speedup",
        nargs="?",
        const=2.0,
        type=float,
        default=None,
        metavar="FACTOR",
        help="exit 1 unless process/thread aggregate throughput at the "
        "smallest rank count clears FACTOR (default 2.0 on >=4 cores, "
        "1.2 on 2-3, skipped on 1)",
    )
    args = parser.parse_args(argv)
    small = CI_SCALE or args.smoke

    if args.ranks is not None:
        rank_counts = [int(r) for r in str(args.ranks).split(",") if r]
    else:
        rank_counts = [4, 8] if small else [8, 16, 32, 64]
    side = 65 if small else 129
    iters = 2 if small else 4
    repeats = 1 if small else 2
    cpu_count = available_workers()

    fabrics = ["thread", "process"] if args.fabric in ("both", "process") else ["thread"]
    if args.fabric == "process" and args.assert_speedup is None:
        fabrics = ["thread", "process"]  # baseline needed either way

    measured = []
    for n in rank_counts:
        for fabric in fabrics:
            point = measure_point(fabric, n, side, iters, repeats)
            measured.append(point)
            print(
                f"  {fabric:8s} {n:3d} ranks: wall {point['wall_s'] * 1e3:8.1f} ms  "
                f"aggregate {point['aggregate_bytes_per_s'] / 1e6:8.1f} MB/s"
            )

    speedups = {}
    if {"thread", "process"} <= set(fabrics):
        for n in rank_counts:
            t = next(p for p in measured if p["fabric"] == "thread" and p["n_ranks"] == n)
            p = next(p for p in measured if p["fabric"] == "process" and p["n_ranks"] == n)
            speedups[str(n)] = p["aggregate_bytes_per_s"] / t["aggregate_bytes_per_s"]
            print(f"  process/thread at {n:3d} ranks: {speedups[str(n)]:.2f}x")

    # the analytic model at paper scale, regenerated next to the numbers
    curves = fig9_weak_scaling()
    fig9_text = format_fig9(curves)
    RESULTS.mkdir(parents=True, exist_ok=True)
    (RESULTS / "fig9_weak_scaling.txt").write_text(fig9_text + "\n")

    report = {
        "benchmark": "weak_scaling",
        "scale": "ci" if small else "full",
        "cpu_count": cpu_count,
        "per_rank_shape": [side, side],
        "iters_per_rank": iters,
        "rank_counts": rank_counts,
        "measured": measured,
        "process_over_thread_speedup": speedups,
        "model_4096_gpus_tbps": {
            name: points[-1].aggregate_tbps for name, points in curves.items()
        },
    }
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"[written to {out}]")

    if args.assert_speedup is not None:
        if cpu_count < 2:
            print(
                f"speedup gate skipped: host has {cpu_count} core(s); the "
                "process fabric cannot beat the thread fabric without "
                "parallel hardware (cpu_count is recorded in the JSON)"
            )
            return 0
        factor = args.assert_speedup if cpu_count >= 4 else min(args.assert_speedup, 1.2)
        n0 = str(min(rank_counts))
        got = speedups.get(n0, 0.0)
        if got < factor:
            print(
                f"process-fabric aggregate throughput {got:.2f}x thread at "
                f"{n0} ranks, below the {factor}x bar "
                f"(host has {cpu_count} cores)",
                file=sys.stderr,
            )
            return 1
        print(f"speedup gate passed: {got:.2f}x >= {factor}x at {n0} ranks")
    return 0


if __name__ == "__main__":
    sys.exit(main())
