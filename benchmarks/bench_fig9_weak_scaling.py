"""Fig. 9: weak-scaling aggregate throughput to 4096 GPUs.

Functional part: runs the real SPMD substrate (thread ranks refactoring
independent partitions) at small rank counts.  Modeled part: the full
Fig. 9 curves at 1 GB per GPU.
"""

import numpy as np
import pytest

from repro.cluster.simmpi import run_spmd
from repro.core.refactor import Refactorer
from repro.experiments import fig9_weak_scaling, format_fig9


@pytest.mark.parametrize("n_ranks", [1, 4])
def test_spmd_refactoring(benchmark, n_ranks, rng):
    data = rng.standard_normal((n_ranks * 65, 65))

    def job():
        def worker(comm):
            chunk = comm.scatter(
                [data[i * 65 : (i + 1) * 65] for i in range(comm.size)]
                if comm.rank == 0
                else None
            )
            r = Refactorer(chunk.shape)
            return float(np.abs(r.recompose(r.decompose(chunk)) - chunk).max())

        return run_spmd(worker, n_ranks)

    errors = benchmark(job)
    assert max(errors) < 1e-9


def test_fig9(benchmark, report):
    curves = benchmark(fig9_weak_scaling)
    report("fig9_weak_scaling", format_fig9(curves))
    # paper: 45.42 TB/s (2D dec), 17.78 TB/s (3D dec) at 4096 GPUs
    assert 30 < curves["2D/decompose"][-1].aggregate_tbps < 70
    assert 12 < curves["3D/decompose"][-1].aggregate_tbps < 35
