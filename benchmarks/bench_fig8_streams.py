"""Fig. 8: CUDA-stream speedups on 3D data.

Functional part: times the event-driven stream scheduler on a large
launch list.  Modeled part: the full Fig. 8 sweep on both platforms.
"""

import pytest

from repro.experiments import fig8_streams, format_fig8
from repro.gpu.streams import StreamScheduler


@pytest.mark.parametrize("n_streams", [1, 8])
def test_scheduler_makespan(benchmark, n_streams, rng):
    durations = list(rng.uniform(1e-5, 1e-3, size=2048))
    sched = StreamScheduler(n_streams)
    makespan = benchmark(sched.makespan, durations)
    assert makespan >= max(durations)


def test_fig8(benchmark, report):
    sweeps = benchmark(fig8_streams)
    report("fig8_streams", format_fig8(sweeps))
    summit = {p.n_streams: p.speedup for p in sweeps["summit/decompose"]}
    # paper: 2.6x at 8 streams, flat afterwards
    assert 2.0 < summit[8] < 4.5
    assert summit[64] == pytest.approx(summit[8])
