#!/usr/bin/env python
"""Parallel class encoding + cross-step code-book reuse benchmark.

Two measurements, written to
``benchmarks/results/BENCH_parallel_classes.json`` so the repo's perf
trajectory stays machine-readable:

1. **parallel vs serial encode** — the segmented entropy stage on a
   65^3 multi-class workload, scheduled through the serial executor and
   a thread-pool executor (class segments fan out; the dominant class
   additionally splits into sync-aligned blocks).  The two payloads are
   asserted byte-identical.  The speedup scales with physical cores:
   zlib/NumPy release the GIL, so on a single-core host the parallel
   path measures only its (small) scheduling overhead — ``cpu_count``
   is recorded alongside so CI numbers are interpreted correctly.

2. **cold vs reused code books** — a 16-step slowly-varying stream
   through the time-series compressor with per-step code-book rebuild
   vs cross-step reuse (``table_ref``/``table_delta`` headers), with
   total bytes, end-to-end wall time, and entropy-stage wall time.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_parallel_classes.py

``REPRO_BENCH_SCALE=ci`` shrinks the workload for smoke runs.  Pass
``--assert-speedup`` to fail (exit 1) unless parallel encode clears 2x
— intended for >= 4-core hosts, not CI smoke.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

from repro.compress.executor import available_workers, get_executor
from repro.compress.lossless import decode_classes, encode_classes
from repro.compress.quantizer import Quantizer
from repro.compress.timeseries import TimeSeriesCompressor
from repro.core.grid import hierarchy_for
from repro.core.refactor import Refactorer

RESULTS = Path(__file__).parent / "results"

CI_SCALE = os.environ.get("REPRO_BENCH_SCALE") == "ci"


def _best_of(fn, repeats: int):
    best, out = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


def bench_parallel_encode(side: int, repeats: int, workers: int) -> dict:
    """Serial vs parallel segmented encode/decode on one 3D field."""
    shape = (side, side, side)
    rng = np.random.default_rng(2021)
    data = rng.standard_normal(shape).cumsum(0).cumsum(1).cumsum(2)
    cc = Refactorer(shape).refactor(data)
    bins, sizes, _ = Quantizer(1e-2).quantize_flat(cc)
    serial = get_executor("serial")
    parallel = get_executor(f"parallel:{workers}")
    out: dict = {
        "shape": list(shape),
        "n_classes": len(sizes),
        "n_symbols": int(bins.size),
        "workers": workers,
    }
    for backend in ("zlib", "huffman"):
        t_s, (p_s, h_s) = _best_of(
            lambda: encode_classes(bins, sizes, backend=backend, executor=serial),
            repeats,
        )
        t_p, (p_p, h_p) = _best_of(
            lambda: encode_classes(bins, sizes, backend=backend, executor=parallel),
            repeats,
        )
        assert p_s == p_p and h_s == h_p, f"{backend}: parallel not bit-identical"
        t_ds, (flat, _) = _best_of(lambda: decode_classes(p_s, h_s), repeats)
        t_dp, (flat_p, _) = _best_of(
            lambda: decode_classes(p_p, h_p, executor=parallel), repeats
        )
        assert np.array_equal(flat, bins) and np.array_equal(flat_p, bins)
        out[backend] = {
            "encode_serial_s": t_s,
            "encode_parallel_s": t_p,
            "encode_speedup": t_s / t_p,
            "decode_serial_s": t_ds,
            "decode_parallel_s": t_dp,
            "decode_speedup": t_ds / t_dp,
            "payload_bytes": len(p_s),
        }
    return out


def bench_codebook_reuse(side: int, n_steps: int) -> dict:
    """Cold (rebuild per step) vs reused code books on a slow stream."""
    shape = (side, side) if CI_SCALE else (side, side, side)
    rng = np.random.default_rng(7)
    base = rng.standard_normal(shape)
    for ax in range(len(shape)):
        base = base.cumsum(ax)
    drift = rng.standard_normal(shape).cumsum(0) * 0.01
    frames = [base + t * drift for t in range(n_steps)]
    tol = 1e-3 * float(base.max() - base.min())
    hier = hierarchy_for(shape)
    out: dict = {"shape": list(shape), "n_steps": n_steps, "tol": tol}
    repeats = 1 if CI_SCALE else 2
    for tag, reuse in (("cold", False), ("reused", True)):
        wall = entropy = float("inf")
        series = None
        for _ in range(repeats):
            tsc = TimeSeriesCompressor(
                hier, tol, backend="huffman", reuse_codebooks=reuse
            )
            t0 = time.perf_counter()
            series = tsc.compress(frames)
            wall = min(wall, time.perf_counter() - t0)
            entropy = min(
                entropy, sum(f.times.entropy_wall for f in series.frames)
            )
        rec = TimeSeriesCompressor(
            hier, tol, backend="huffman", reuse_codebooks=reuse
        ).decompress(series)
        assert all(
            np.abs(a - b).max() <= tol for a, b in zip(frames, rec)
        ), "stream round trip violated the bound"
        refs = sum(
            1
            for f in series.frames
            for s in f.headers[0].get("segments", [])
            if "table_ref" in s
        )
        out[tag] = {
            "wall_s": wall,
            "entropy_wall_s": entropy,
            "total_bytes": series.nbytes,
            "table_ref_segments": refs,
        }
    out["bytes_saved_fraction"] = 1.0 - out["reused"]["total_bytes"] / out["cold"][
        "total_bytes"
    ]
    out["entropy_speedup"] = (
        out["cold"]["entropy_wall_s"] / out["reused"]["entropy_wall_s"]
    )
    out["wall_speedup"] = out["cold"]["wall_s"] / out["reused"]["wall_s"]
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default=str(RESULTS / "BENCH_parallel_classes.json"))
    parser.add_argument(
        "--assert-speedup",
        action="store_true",
        help="exit 1 unless huffman parallel encode clears 2x (>=4-core hosts)",
    )
    args = parser.parse_args(argv)

    side = 33 if CI_SCALE else 65
    repeats = 2 if CI_SCALE else 3
    n_steps = 6 if CI_SCALE else 16
    workers = max(available_workers(), 4)

    report = {
        "benchmark": "parallel_classes",
        "scale": "ci" if CI_SCALE else "full",
        "cpu_count": available_workers(),
        "parallel_encode": bench_parallel_encode(side, repeats, workers),
        "codebook_reuse": bench_codebook_reuse(side, n_steps),
    }

    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2) + "\n")

    pe = report["parallel_encode"]
    cr = report["codebook_reuse"]
    print(f"parallel class encoding on {pe['shape']} ({report['cpu_count']} cores, "
          f"{pe['workers']} workers):")
    for backend in ("zlib", "huffman"):
        b = pe[backend]
        print(
            f"  {backend:8s} encode {b['encode_serial_s'] * 1e3:7.1f} ms -> "
            f"{b['encode_parallel_s'] * 1e3:7.1f} ms ({b['encode_speedup']:.2f}x)   "
            f"decode {b['decode_serial_s'] * 1e3:7.1f} ms -> "
            f"{b['decode_parallel_s'] * 1e3:7.1f} ms ({b['decode_speedup']:.2f}x)"
        )
    print(f"code-book reuse over {cr['n_steps']} steps on {cr['shape']}:")
    print(
        f"  cold   {cr['cold']['wall_s']:6.2f} s  "
        f"(entropy {cr['cold']['entropy_wall_s'] * 1e3:6.0f} ms)  "
        f"{cr['cold']['total_bytes']} bytes"
    )
    print(
        f"  reused {cr['reused']['wall_s']:6.2f} s  "
        f"(entropy {cr['reused']['entropy_wall_s'] * 1e3:6.0f} ms)  "
        f"{cr['reused']['total_bytes']} bytes  "
        f"({cr['entropy_speedup']:.2f}x entropy, "
        f"{cr['bytes_saved_fraction'] * 100:.1f}% smaller, "
        f"{cr['reused']['table_ref_segments']} ref segments)"
    )
    print(f"[written to {out}]")

    if args.assert_speedup:
        sp = pe["huffman"]["encode_speedup"]
        if sp < 2.0:
            print(
                f"huffman parallel encode speedup {sp:.2f}x below the 2x bar "
                f"(host has {report['cpu_count']} cores)",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
